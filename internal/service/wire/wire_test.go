package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/solver"
)

// reqRoundTrip encodes req, strips the frame header, decodes, and
// re-encodes, asserting both the struct and the bytes reach a fixed
// point.
func reqRoundTrip(t *testing.T, req Request) Request {
	t.Helper()
	frame, err := EncodeRequest(req)
	if err != nil {
		t.Fatalf("encode %+v: %v", req, err)
	}
	got, err := DecodeRequest(frame[4:])
	if err != nil {
		t.Fatalf("decode %+v: %v", req, err)
	}
	frame2, err := EncodeRequest(got)
	if err != nil {
		t.Fatalf("re-encode %+v: %v", got, err)
	}
	if !bytes.Equal(frame, frame2) {
		t.Fatalf("request %+v not a fixed point:\n  %x\n  %x", req, frame, frame2)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpExtend, ReqID: 1, ID: 0, Groups: [][][]int{{{1, 2}}}},
		{Op: OpExtend, ReqID: 1<<64 - 1, ID: 42, Groups: [][][]int{
			{{1, -2, 3}, {-1}},
			{{2}},
			{}, // empty group: zero clauses is representable
		}},
		{Op: OpRelease, ReqID: 7, ID: 3},
		{Op: OpPin, ReqID: 8, ID: 4},
		{Op: OpUnpin, ReqID: 9, ID: 5},
		{Op: OpTouch, ReqID: 10, ID: 6},
		{Op: OpStats, ReqID: 11},
	}
	for _, req := range reqs {
		got := reqRoundTrip(t, req)
		if got.Op != req.Op || got.ReqID != req.ReqID || got.ID != req.ID {
			t.Errorf("header fields: got %+v, want %+v", got, req)
		}
		if req.Op == OpExtend && !reflect.DeepEqual(got.Groups, req.Groups) {
			t.Errorf("groups: got %v, want %v", got.Groups, req.Groups)
		}
	}
}

func respRoundTrip(t *testing.T, resp Response) Response {
	t.Helper()
	frame, err := EncodeResponse(resp)
	if err != nil {
		t.Fatalf("encode %+v: %v", resp, err)
	}
	got, err := DecodeResponse(frame[4:])
	if err != nil {
		t.Fatalf("decode %+v: %v", resp, err)
	}
	frame2, err := EncodeResponse(got)
	if err != nil {
		t.Fatalf("re-encode %+v: %v", got, err)
	}
	if !bytes.Equal(frame, frame2) {
		t.Fatalf("response %+v not a fixed point:\n  %x\n  %x", resp, frame, frame2)
	}
	return got
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Op: OpExtend, ReqID: 3, Results: []ExtendResult{
			{ID: 1, Verdict: solver.Sat, Model: []bool{false, true, false, true}},
			{ID: 2, Verdict: solver.Unsat},
			{ID: 3, Verdict: solver.Unknown},
			// 9 variables: exercises a bitset with padding bits.
			{ID: 4, Verdict: solver.Sat, Model: []bool{false, true, true, false, true, false, false, true, true}},
		}},
		{Op: OpExtend, ReqID: 4, Results: []ExtendResult{}},
		{Op: OpRelease, ReqID: 5},
		{Op: OpStats, ReqID: 6, Text: "extends=3 refs=2"},
		{Op: OpStats, ReqID: 7}, // empty stats text
		{Op: OpTouch, ReqID: 8, Err: "service: unknown problem reference 9"},
	}
	for _, resp := range resps {
		got := respRoundTrip(t, resp)
		if got.Op != resp.Op || got.ReqID != resp.ReqID || got.Err != resp.Err || got.Text != resp.Text {
			t.Errorf("fields: got %+v, want %+v", got, resp)
		}
		if len(got.Results) != len(resp.Results) {
			t.Errorf("results: got %d, want %d", len(got.Results), len(resp.Results))
			continue
		}
		for i := range got.Results {
			g, w := got.Results[i], resp.Results[i]
			if g.ID != w.ID || g.Verdict != w.Verdict {
				t.Errorf("result %d: got %+v, want %+v", i, g, w)
			}
			for j := range w.Model {
				if g.Model[j] != w.Model[j] {
					t.Errorf("result %d model bit %d: got %v, want %v", i, j, g.Model[j], w.Model[j])
				}
			}
		}
	}
}

// TestDecodeRejects pins the strictness guarantees: hostile counts,
// out-of-range bytes, non-canonical encodings, and trailing garbage all
// fail decoding instead of being repaired.
func TestDecodeRejects(t *testing.T) {
	mustReq := func(req Request) []byte {
		frame, err := EncodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		return frame[4:]
	}
	mustResp := func(resp Response) []byte {
		frame, err := EncodeResponse(resp)
		if err != nil {
			t.Fatal(err)
		}
		return frame[4:]
	}
	extend := mustReq(Request{Op: OpExtend, ReqID: 1, ID: 0, Groups: [][][]int{{{1, 2}}}})
	okResp := mustResp(Response{Op: OpExtend, ReqID: 1, Results: []ExtendResult{
		{ID: 1, Verdict: solver.Sat, Model: []bool{true, true, false}},
	}})

	reqCases := map[string][]byte{
		"empty payload":    {},
		"unknown op":       {0xFF, 0, 0, 0, 0, 0, 0, 0, 1},
		"truncated header": extend[:5],
		"truncated groups": extend[:len(extend)-2],
		"trailing bytes":   append(append([]byte{}, extend...), 0),
		// Patch the literal (last 4 bytes of this frame) to zero.
		"zero literal": func() []byte {
			b := append([]byte{}, extend...)
			copy(b[len(b)-4:], []byte{0, 0, 0, 0})
			return b
		}(),
		// Patch the group count (bytes 17:21 — after op, reqID, parent) to a
		// value no frame this size could hold.
		"hostile group count": func() []byte {
			b := append([]byte{}, extend...)
			copy(b[17:21], []byte{0xFF, 0xFF, 0xFF, 0xFF})
			return b
		}(),
		"zero groups": {byte(OpExtend),
			0, 0, 0, 0, 0, 0, 0, 1, // reqID
			0, 0, 0, 0, 0, 0, 0, 0, // parent
			0, 0, 0, 0}, // nGroups = 0
	}
	for name, payload := range reqCases {
		if _, err := DecodeRequest(payload); err == nil {
			t.Errorf("DecodeRequest accepted %s", name)
		}
	}

	respCases := map[string][]byte{
		"empty payload":  {},
		"unknown op":     {0xFF, 0, 0, 0, 0, 0, 0, 0, 1, 0},
		"status 2":       {byte(OpRelease), 0, 0, 0, 0, 0, 0, 0, 1, 2},
		"empty error":    {byte(OpRelease), 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0},
		"trailing bytes": append(append([]byte{}, okResp...), 0),
		"truncated":      okResp[:len(okResp)-1],
		// Verdict byte of result 0 lives right after nResults+id
		// (10 header bytes + 4 count + 8 id).
		"verdict 3": func() []byte {
			b := append([]byte{}, okResp...)
			b[22] = 3
			return b
		}(),
		// The model bitset's last byte holds 3 used bits; set bit 5.
		"nonzero padding": func() []byte {
			b := append([]byte{}, okResp...)
			b[len(b)-1] |= 1 << 5
			return b
		}(),
	}
	for name, payload := range respCases {
		if _, err := DecodeResponse(payload); err == nil {
			t.Errorf("DecodeResponse accepted %s", name)
		}
	}
}

func TestReadFrame(t *testing.T) {
	frame, err := EncodeRequest(Request{Op: OpStats, ReqID: 9})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if !bytes.Equal(payload, frame[4:]) {
		t.Fatalf("payload %x, want %x", payload, frame[4:])
	}

	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}
	if _, err := ReadFrame(bytes.NewReader(frame[:2])); err != io.ErrUnexpectedEOF {
		t.Errorf("cut header: %v, want io.ErrUnexpectedEOF", err)
	}
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-1])); err != io.ErrUnexpectedEOF {
		t.Errorf("cut payload: %v, want io.ErrUnexpectedEOF", err)
	}
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("oversized frame: %v, want ErrFrameTooBig", err)
	}
}

func TestNegotiationLines(t *testing.T) {
	if v, ok := ParseHello(Hello(Version)); !ok || v != Version {
		t.Errorf("ParseHello(Hello(%d)) = %d, %v", Version, v, ok)
	}
	if v, ok := ParseHello("binary 3\r\n"); !ok || v != 3 {
		t.Errorf("CRLF hello: %d, %v", v, ok)
	}
	for _, bad := range []string{"", "binary", "binary x", "binary 0", "binary -1", "extend 0 1 0", "binaryx 1", "binary 1 2"} {
		if _, ok := ParseHello(bad); ok {
			t.Errorf("ParseHello accepted %q", bad)
		}
	}

	if v, ok := ParseAccept(Accept(1)); !ok || v != 1 {
		t.Errorf("ParseAccept(Accept(1)) = %d, %v", v, ok)
	}
	for _, bad := range []string{"", "err: unknown command \"binary\"", "proto binary", "proto binary 0", "proto binary x"} {
		if _, ok := ParseAccept(bad); ok {
			t.Errorf("ParseAccept accepted %q", bad)
		}
	}

	if v, ok := Negotiate(1); !ok || v != 1 {
		t.Errorf("Negotiate(1) = %d, %v", v, ok)
	}
	if v, ok := Negotiate(99); !ok || v != Version {
		t.Errorf("Negotiate(99) = %d, %v, want server max", v, ok)
	}
	if _, ok := Negotiate(0); ok {
		t.Error("Negotiate(0) accepted")
	}
}

// TestEncodeRejects: inputs the wire format cannot carry fail at encode
// time, before any bytes hit the connection.
func TestEncodeRejects(t *testing.T) {
	if _, err := EncodeRequest(Request{Op: OpExtend, Groups: nil}); err == nil {
		t.Error("extend with zero groups encoded")
	}
	if _, err := EncodeRequest(Request{Op: OpExtend, Groups: [][][]int{{{0}}}}); err == nil {
		t.Error("zero literal encoded")
	}
	if _, err := EncodeRequest(Request{Op: Op(200)}); err == nil {
		t.Error("unknown request op encoded")
	}
	if _, err := EncodeResponse(Response{Op: Op(200)}); err == nil {
		t.Error("unknown response op encoded")
	}
	if _, err := EncodeResponse(Response{Op: OpExtend, Results: []ExtendResult{{Verdict: 7}}}); err == nil {
		t.Error("out-of-range verdict encoded")
	}

	// Oversized error messages are truncated, not refused — and the
	// truncated form must still round-trip.
	long := Response{Op: OpRelease, ReqID: 1, Err: strings.Repeat("x", maxErrBytes+100)}
	frame, err := EncodeResponse(long)
	if err != nil {
		t.Fatalf("oversized error message: %v", err)
	}
	got, err := DecodeResponse(frame[4:])
	if err != nil {
		t.Fatalf("decoding truncated error message: %v", err)
	}
	if len(got.Err) != maxErrBytes {
		t.Errorf("error message truncated to %d, want %d", len(got.Err), maxErrBytes)
	}
}
