package service

import (
	"context"
	"errors"

	"testing"

	"repro/internal/solver"
)

func TestExtendChain(t *testing.T) {
	s := New()
	defer s.Close()

	// p: (x1 ∨ x2)
	r1, err := s.Extend(context.Background(), 0, [][]int{{1, 2}})
	if err != nil || r1.Verdict != solver.Sat {
		t.Fatalf("p: %+v, %v", r1, err)
	}
	// p ∧ q: ¬x1 forces x2.
	r2, err := s.Extend(context.Background(), r1.ID, [][]int{{-1}})
	if err != nil || r2.Verdict != solver.Sat {
		t.Fatalf("p∧q: %+v, %v", r2, err)
	}
	if !r2.Model[2] || r2.Model[1] {
		t.Errorf("model = %v, want x2 ∧ ¬x1", r2.Model)
	}
	// p ∧ q ∧ ¬x2: unsat.
	r3, err := s.Extend(context.Background(), r2.ID, [][]int{{-2}})
	if err != nil || r3.Verdict != solver.Unsat {
		t.Fatalf("p∧q∧r: %+v, %v", r3, err)
	}
}

func TestMultiPathBranching(t *testing.T) {
	s := New()
	defer s.Close()
	base, err := s.Extend(context.Background(), 0, solver.Random3SAT(30, 60, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Branch the same solved base two incompatible ways: both must work,
	// and the parent must remain intact for a third branch.
	a, err := s.Extend(context.Background(), base.ID, [][]int{{1}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Extend(context.Background(), base.ID, [][]int{{-1}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict == solver.Sat && b.Verdict == solver.Sat {
		if a.Model[1] == b.Model[1] {
			t.Error("branches did not diverge on x1")
		}
	}
	c, err := s.Extend(context.Background(), base.ID, nil)
	if err != nil || c.Verdict != base.Verdict {
		t.Errorf("third branch verdict %v vs base %v (%v)", c.Verdict, base.Verdict, err)
	}
}

func TestUnsatSticks(t *testing.T) {
	s := New()
	defer s.Close()
	r1, _ := s.Extend(context.Background(), 0, [][]int{{1}, {-1}})
	if r1.Verdict != solver.Unsat {
		t.Fatalf("verdict = %v", r1.Verdict)
	}
	r2, err := s.Extend(context.Background(), r1.ID, [][]int{{2}})
	if err != nil || r2.Verdict != solver.Unsat {
		t.Errorf("extension of unsat = %v, %v", r2.Verdict, err)
	}
}

func TestUnknownRefAndRelease(t *testing.T) {
	s := New()
	defer s.Close()
	if _, err := s.Extend(context.Background(), 999, nil); err == nil {
		t.Error("unknown ref accepted")
	}
	r, _ := s.Extend(context.Background(), 0, [][]int{{1}})
	if err := s.Release(r.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(r.ID); err == nil {
		t.Error("double release succeeded")
	}
	if _, err := s.Extend(context.Background(), r.ID, nil); err == nil {
		t.Error("released ref still usable")
	}
}

func TestCloseFreesEverything(t *testing.T) {
	s := New()
	r1, _ := s.Extend(context.Background(), 0, [][]int{{1, 2}})
	s.Extend(context.Background(), r1.ID, [][]int{{3}})
	s.Extend(context.Background(), r1.ID, [][]int{{-3}})
	if s.Refs() != 4 {
		t.Errorf("refs = %d, want 4", s.Refs())
	}
	s.Close()
	if s.Refs() != 0 || s.LiveSnapshots() != 0 {
		t.Errorf("refs=%d live=%d after Close", s.Refs(), s.LiveSnapshots())
	}
}

func TestExtendCancelledContext(t *testing.T) {
	s := New()
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Extend(ctx, 0, [][]int{{1}}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// No reference parked, no snapshot leaked beyond the root.
	if s.Refs() != 1 {
		t.Errorf("refs = %d, want 1 (root only)", s.Refs())
	}
	r, err := s.Extend(context.Background(), 0, [][]int{{1}})
	if err != nil || r.Verdict != solver.Sat {
		t.Errorf("service unusable after cancelled Extend: %+v, %v", r, err)
	}
}

func TestCloseRefusesNewExtends(t *testing.T) {
	s := New()
	if _, err := s.Extend(context.Background(), 0, [][]int{{1}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Extend(context.Background(), 0, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
	if s.LiveSnapshots() != 0 {
		t.Errorf("live snapshots = %d after Close", s.LiveSnapshots())
	}
}

func TestLearnedClausesCarry(t *testing.T) {
	s := New()
	defer s.Close()
	// A problem hard enough to learn something.
	r1, err := s.Extend(context.Background(), 0, solver.Pigeonhole(4)[:20])
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Extend(context.Background(), r1.ID, solver.Pigeonhole(4)[20:])
	if err != nil {
		t.Fatal(err)
	}
	if r2.Verdict != solver.Unsat {
		t.Errorf("php4 = %v, want unsat", r2.Verdict)
	}
}
