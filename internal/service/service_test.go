package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fs"
	"repro/internal/solver"
)

func TestExtendChain(t *testing.T) {
	s := New()
	defer s.Close()

	// p: (x1 ∨ x2)
	r1, err := s.Extend(context.Background(), 0, [][]int{{1, 2}})
	if err != nil || r1.Verdict != solver.Sat {
		t.Fatalf("p: %+v, %v", r1, err)
	}
	// p ∧ q: ¬x1 forces x2.
	r2, err := s.Extend(context.Background(), r1.ID, [][]int{{-1}})
	if err != nil || r2.Verdict != solver.Sat {
		t.Fatalf("p∧q: %+v, %v", r2, err)
	}
	if !r2.Model[2] || r2.Model[1] {
		t.Errorf("model = %v, want x2 ∧ ¬x1", r2.Model)
	}
	// p ∧ q ∧ ¬x2: unsat.
	r3, err := s.Extend(context.Background(), r2.ID, [][]int{{-2}})
	if err != nil || r3.Verdict != solver.Unsat {
		t.Fatalf("p∧q∧r: %+v, %v", r3, err)
	}
}

func TestMultiPathBranching(t *testing.T) {
	s := New()
	defer s.Close()
	base, err := s.Extend(context.Background(), 0, solver.Random3SAT(30, 60, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Branch the same solved base two incompatible ways: both must work,
	// and the parent must remain intact for a third branch.
	a, err := s.Extend(context.Background(), base.ID, [][]int{{1}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Extend(context.Background(), base.ID, [][]int{{-1}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict == solver.Sat && b.Verdict == solver.Sat {
		if a.Model[1] == b.Model[1] {
			t.Error("branches did not diverge on x1")
		}
	}
	c, err := s.Extend(context.Background(), base.ID, nil)
	if err != nil || c.Verdict != base.Verdict {
		t.Errorf("third branch verdict %v vs base %v (%v)", c.Verdict, base.Verdict, err)
	}
}

func TestUnsatSticks(t *testing.T) {
	s := New()
	defer s.Close()
	r1, _ := s.Extend(context.Background(), 0, [][]int{{1}, {-1}})
	if r1.Verdict != solver.Unsat {
		t.Fatalf("verdict = %v", r1.Verdict)
	}
	r2, err := s.Extend(context.Background(), r1.ID, [][]int{{2}})
	if err != nil || r2.Verdict != solver.Unsat {
		t.Errorf("extension of unsat = %v, %v", r2.Verdict, err)
	}
}

func TestUnknownRefAndRelease(t *testing.T) {
	s := New()
	defer s.Close()
	if _, err := s.Extend(context.Background(), 999, nil); err == nil {
		t.Error("unknown ref accepted")
	}
	r, _ := s.Extend(context.Background(), 0, [][]int{{1}})
	if err := s.Release(r.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(r.ID); err == nil {
		t.Error("double release succeeded")
	}
	if _, err := s.Extend(context.Background(), r.ID, nil); err == nil {
		t.Error("released ref still usable")
	}
}

func TestCloseFreesEverything(t *testing.T) {
	s := New()
	r1, _ := s.Extend(context.Background(), 0, [][]int{{1, 2}})
	s.Extend(context.Background(), r1.ID, [][]int{{3}})
	s.Extend(context.Background(), r1.ID, [][]int{{-3}})
	if s.Refs() != 4 {
		t.Errorf("refs = %d, want 4", s.Refs())
	}
	s.Close()
	if s.Refs() != 0 || s.LiveSnapshots() != 0 {
		t.Errorf("refs=%d live=%d after Close", s.Refs(), s.LiveSnapshots())
	}
}

func TestExtendCancelledContext(t *testing.T) {
	s := New()
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Extend(ctx, 0, [][]int{{1}}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// No reference parked, no snapshot leaked beyond the root.
	if s.Refs() != 1 {
		t.Errorf("refs = %d, want 1 (root only)", s.Refs())
	}
	r, err := s.Extend(context.Background(), 0, [][]int{{1}})
	if err != nil || r.Verdict != solver.Sat {
		t.Errorf("service unusable after cancelled Extend: %+v, %v", r, err)
	}
}

func TestCloseRefusesNewExtends(t *testing.T) {
	s := New()
	if _, err := s.Extend(context.Background(), 0, [][]int{{1}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Extend(context.Background(), 0, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	// Every table operation reports ErrClosed — not ErrUnknownRef, which
	// would claim the permanent root never existed.
	if err := s.Touch(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Touch after Close = %v, want ErrClosed", err)
	}
	if err := s.Release(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Release after Close = %v, want ErrClosed", err)
	}
	if err := s.Pin(0); !errors.Is(err, ErrClosed) {
		t.Errorf("Pin after Close = %v, want ErrClosed", err)
	}
	if err := s.Unpin(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Unpin after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
	if s.LiveSnapshots() != 0 {
		t.Errorf("live snapshots = %d after Close", s.LiveSnapshots())
	}
}

func TestLearnedClausesCarry(t *testing.T) {
	s := New()
	defer s.Close()
	// A problem hard enough to learn something.
	r1, err := s.Extend(context.Background(), 0, solver.Pigeonhole(4)[:20])
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Extend(context.Background(), r1.ID, solver.Pigeonhole(4)[20:])
	if err != nil {
		t.Fatal(err)
	}
	if r2.Verdict != solver.Unsat {
		t.Errorf("php4 = %v, want unsat", r2.Verdict)
	}
}

func TestRootPermanent(t *testing.T) {
	s := New()
	defer s.Close()
	if err := s.Release(0); !errors.Is(err, ErrRootPermanent) {
		t.Fatalf("Release(0) = %v, want ErrRootPermanent", err)
	}
	if err := s.Unpin(0); !errors.Is(err, ErrRootPermanent) {
		t.Fatalf("Unpin(0) = %v, want ErrRootPermanent", err)
	}
	// The root must remain usable after the refused release.
	if r, err := s.Extend(context.Background(), 0, [][]int{{1}}); err != nil || r.Verdict != solver.Sat {
		t.Errorf("extend 0 after refused release: %+v, %v", r, err)
	}
}

func TestEvictionCapLRU(t *testing.T) {
	s := NewWithConfig(Config{Capacity: 3, Shards: 4})
	defer s.Close()

	ids := make([]uint64, 0, 6)
	for i := 1; i <= 6; i++ {
		r, err := s.Extend(context.Background(), 0, [][]int{{i}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID)
		if unpinned := s.Refs() - 1; unpinned > 3 {
			t.Fatalf("after extend %d: %d unpinned refs, cap 3", i, unpinned)
		}
	}
	// Three oldest evicted, three newest alive, root untouched.
	st := s.Stats()
	if st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", st.Evictions)
	}
	for _, id := range ids[:3] {
		if _, err := s.Extend(context.Background(), id, nil); !errors.Is(err, ErrEvicted) {
			t.Errorf("extend evicted %d = %v, want ErrEvicted", id, err)
		}
		if err := s.Release(id); !errors.Is(err, ErrEvicted) {
			t.Errorf("release evicted %d = %v, want ErrEvicted", id, err)
		}
	}
	for _, id := range ids[3:] {
		if err := s.Touch(id); err != nil {
			t.Errorf("touch live %d = %v", id, err)
		}
	}
	// Eviction released the snapshots: the live count tracks the table
	// (root + 3 survivors, all direct children of the root), not the 7
	// captured over the test's lifetime.
	if live := s.LiveSnapshots(); live != 4 {
		t.Errorf("live = %d, want 4 (root + 3 survivors)", live)
	}
}

func TestLRUTouchOrder(t *testing.T) {
	s := NewWithConfig(Config{Capacity: 3})
	defer s.Close()
	var ids []uint64
	for i := 1; i <= 3; i++ {
		r, err := s.Extend(context.Background(), 0, [][]int{{i}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID)
	}
	// Touch the oldest (ids[0]) by extending it: the resulting park must
	// evict ids[1], now the least recently used.
	r, err := s.Extend(context.Background(), ids[0], [][]int{{9}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Touch(ids[1]); !errors.Is(err, ErrEvicted) {
		t.Errorf("LRU victim: touch %d = %v, want ErrEvicted", ids[1], err)
	}
	for _, id := range []uint64{ids[0], ids[2], r.ID} {
		if err := s.Touch(id); err != nil {
			t.Errorf("non-LRU %d: %v", id, err)
		}
	}
}

func TestPinSurvivesEviction(t *testing.T) {
	s := NewWithConfig(Config{Capacity: 2})
	defer s.Close()
	base, err := s.Extend(context.Background(), 0, [][]int{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Pin(base.ID); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 8; i++ {
		if _, err := s.Extend(context.Background(), 0, [][]int{{i}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Extend(context.Background(), base.ID, nil); err != nil {
		t.Errorf("pinned ref evicted: %v", err)
	}
	st := s.Stats()
	if st.Pinned != 2 { // root + base
		t.Errorf("pinned = %d, want 2", st.Pinned)
	}
	if unpinned := st.Refs - st.Pinned; unpinned > 2 {
		t.Errorf("unpinned refs = %d, cap 2", unpinned)
	}
	// Unpinned again it becomes evictable on the next over-cap park.
	if err := s.Unpin(base.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin(base.ID); err != nil { // pin back: idempotent round-trip
		t.Fatal(err)
	}
	if err := s.Pin(base.ID); err != nil {
		t.Errorf("re-pin = %v, want idempotent nil", err)
	}
}

func TestOversizedStateNotParked(t *testing.T) {
	orig := marshalState
	defer func() { marshalState = orig }()
	// MaxFileSize+1 bytes of untouched zero pages: rejected by the fs
	// bound before any block is allocated.
	huge := make([]byte, fs.MaxFileSize+1)
	marshalState = func(sol *solver.Solver) []byte { return huge }
	s := New()
	defer s.Close()
	refs, live := s.Refs(), s.LiveSnapshots()
	if _, err := s.Extend(context.Background(), 0, [][]int{{1}}); !errors.Is(err, fs.ErrTooBig) {
		t.Fatalf("oversized extend = %v, want fs.ErrTooBig", err)
	}
	if s.Refs() != refs || s.LiveSnapshots() != live {
		t.Errorf("failed extend parked state: refs %d→%d live %d→%d",
			refs, s.Refs(), live, s.LiveSnapshots())
	}
	// The parent stays usable once states fit again.
	marshalState = orig
	if r, err := s.Extend(context.Background(), 0, [][]int{{1}}); err != nil || r.Verdict != solver.Sat {
		t.Errorf("extend after failed park: %+v, %v", r, err)
	}
}

func TestStatsFootprintSharing(t *testing.T) {
	s := New()
	defer s.Close()
	base, err := s.Extend(context.Background(), 0, solver.Random3SAT(150, 620, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := s.Extend(context.Background(), base.ID, [][]int{{i}}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Extends != 5 {
		t.Errorf("extends = %d, want 5", st.Extends)
	}
	if st.Refs != 6 || st.LiveSnapshots == 0 {
		t.Errorf("refs=%d live=%d", st.Refs, st.LiveSnapshots)
	}
	// Five siblings of one solved base: the bulk of their pages must be
	// physically shared — that is the §3.2 payoff the table stores.
	if st.SharedBytes == 0 || st.SharedRatio() < 0.5 {
		t.Errorf("shared ratio = %.2f (%d shared / %d private bytes), want > 0.5",
			st.SharedRatio(), st.SharedBytes, st.PrivateBytes)
	}
}

// TestDeadlineInterruptsHardSolve: the solve runs in conflict-budget
// slices, so a ctx deadline interrupts even an instance whose proof would
// otherwise run unbounded (pigeonhole-9 is far beyond this solver) —
// which is what lets a draining server not wait out hard solves.
func TestDeadlineInterruptsHardSolve(t *testing.T) {
	s := New()
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Extend(ctx, 0, solver.Pigeonhole(9))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v after %v, want DeadlineExceeded", err, elapsed)
	}
	if elapsed > 10*time.Second {
		t.Errorf("deadline observed only after %v; slicing is not bounding the solve", elapsed)
	}
	if s.Refs() != 1 || s.LiveSnapshots() != 1 {
		t.Errorf("interrupted extend leaked: refs=%d live=%d", s.Refs(), s.LiveSnapshots())
	}
}
