// Package service implements the multi-path incremental solver service of
// the paper's §3.2: clients hold opaque references to previously solved
// problems; extending problem p with constraint q restores p's lightweight
// snapshot, solves p∧q incrementally, and returns a new reference. The
// snapshot tree is the service's store — siblings share all unmodified
// state physically, so a thousand variants of one base problem cost far
// less than a thousand copies.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/snapshot"
	"repro/internal/solver"
)

// ErrClosed reports an operation on a closed service.
var ErrClosed = errors.New("service: closed")

// stateFile is where the serialized solver lives inside each candidate.
const stateFile = "/solver.state"

// Result reports one Extend call.
type Result struct {
	// ID is the opaque reference to the new problem.
	ID uint64
	// Verdict is the solver's answer for the extended problem.
	Verdict solver.Status
	// Model is the satisfying assignment (Verdict == Sat), indexed by
	// variable; index 0 unused.
	Model []bool
	// Learned is the number of retained learned clauses (diagnostics).
	Learned int
}

// Service is a multi-path incremental SAT solver.
type Service struct {
	mu       sync.Mutex
	tree     *snapshot.Tree
	alloc    *mem.FrameAllocator
	states   map[uint64]*snapshot.State
	nextID   uint64
	closed   bool
	inflight sync.WaitGroup
}

// New returns a service whose root problem (reference 0) is empty.
func New() *Service {
	s := &Service{
		tree:   snapshot.NewTree(),
		alloc:  mem.NewFrameAllocator(0),
		states: map[uint64]*snapshot.State{},
	}
	// Root candidate: empty filesystem, empty solver.
	as := mem.NewAddressSpace(s.alloc)
	ctx := &snapshot.Context{Mem: as, FS: fs.New()}
	s.states[0] = s.tree.Capture(ctx, nil)
	ctx.Release()
	s.nextID = 1
	return s
}

// Extend solves states[id] ∧ clauses and parks the result behind a new
// reference. The parent reference stays valid — callers can branch the
// same base problem many ways (the "multi-path" in the paper's name).
// ctx is observed before and after the solve: a cancelled Extend returns
// ctx.Err() without parking a reference or leaking a snapshot. A nil ctx
// means context.Background().
func (s *Service) Extend(ctx context.Context, id uint64, clauses [][]int) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Result{}, ErrClosed
	}
	parent, ok := s.states[id]
	if !ok {
		s.mu.Unlock()
		return Result{}, fmt.Errorf("service: unknown problem reference %d", id)
	}
	parent.Retain() // keep alive while we work unlocked
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()
	defer parent.Release()

	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	cand := parent.Restore()
	defer cand.Release()

	var sol *solver.Solver
	if data, err := cand.FS.ReadFile(stateFile); err == nil {
		sol, err = solver.Unmarshal(data)
		if err != nil {
			return Result{}, fmt.Errorf("service: corrupt state for %d: %w", id, err)
		}
	} else {
		sol = solver.New(0)
	}
	for _, cl := range clauses {
		if err := sol.AddClause(cl...); err != nil {
			return Result{}, err
		}
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	verdict := sol.Solve(0)
	res := Result{Verdict: verdict, Learned: sol.NumLearnts()}
	if verdict == solver.Sat {
		res.Model = sol.Model()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	cand.FS.WriteFile(stateFile, sol.Marshal())

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Result{}, ErrClosed
	}
	res.ID = s.nextID
	s.nextID++
	s.states[res.ID] = s.tree.Capture(cand, parent)
	s.mu.Unlock()
	return res, nil
}

// Release drops a problem reference.
func (s *Service) Release(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[id]
	if !ok {
		return fmt.Errorf("service: unknown problem reference %d", id)
	}
	delete(s.states, id)
	st.Release()
	return nil
}

// Refs returns the number of live problem references.
func (s *Service) Refs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.states)
}

// LiveSnapshots returns the snapshot tree's live count (diagnostics).
func (s *Service) LiveSnapshots() int64 { return s.tree.Live() }

// Close shuts the service down gracefully: new Extends are refused with
// ErrClosed; in-flight Extends drain first — one that finishes its solve
// after Close began returns ErrClosed without parking a reference — and
// then every parked reference is released. After Close returns,
// LiveSnapshots reports 0. Close is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	for id, st := range s.states {
		st.Release()
		delete(s.states, id)
	}
}
