// Package service implements the multi-path incremental solver service of
// the paper's §3.2: clients hold opaque references to previously solved
// problems; extending problem p with constraint q restores p's lightweight
// snapshot, solves p∧q incrementally, and returns a new reference. The
// snapshot tree is the service's store — siblings share all unmodified
// state physically, so a thousand variants of one base problem cost far
// less than a thousand copies.
//
// The reference table is sharded across N locks, so concurrent Extends on
// different references never contend: a lookup touches one shard, the
// solve and capture run entirely off-lock, and the park touches one shard
// again. Capacity is bounded — beyond Config.Capacity parked (unpinned)
// references, the least-recently-used one is evicted. Without a
// persistence tier its snapshot is released and the id answers
// ErrEvicted (distinct from an unknown reference); with Config.Store
// attached, eviction becomes demotion — the victim spills to the
// content-addressed store and a later Extend/Pin/Touch on its id
// transparently promotes it back, so capacity bounds hot memory, not the
// number of problems the service can hold. Pinned references and the
// permanent root (id 0) are never evicted.
package service

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/snapshot"
	"repro/internal/solver"
	"repro/internal/store"
)

// Errors distinguishable by clients (wrapped with the offending id).
var (
	// ErrClosed reports an operation on a closed service.
	ErrClosed = errors.New("service: closed")
	// ErrEvicted reports a reference dropped by capacity eviction — the
	// problem existed but its parked snapshot was reclaimed under the
	// Config.Capacity bound. Distinct from ErrUnknownRef so clients can
	// re-derive the problem rather than treat it as a protocol mistake.
	ErrEvicted = errors.New("evicted by capacity limit")
	// ErrUnknownRef reports an id that was never issued or was released.
	ErrUnknownRef = errors.New("unknown problem reference")
	// ErrRootPermanent reports an attempt to release or unpin the root:
	// reference 0 is the permanent empty base problem every client
	// branches from, so destroying it would brick the service.
	ErrRootPermanent = errors.New("service: root reference 0 is permanent")
)

// stateFile is where the serialized solver lives inside each candidate.
const stateFile = "/solver.state"

// solveSliceConflicts is the conflict budget of one Solve slice: the
// granularity at which an in-flight Extend observes its context. Small
// enough to bound cancellation latency to milliseconds, large enough
// that slicing adds no measurable overhead to easy instances.
const solveSliceConflicts = 4096

// marshalState serializes a solver for parking. A seam so tests can
// exercise the oversized-state path without building a >1 GiB solver.
var marshalState = func(sol *solver.Solver) []byte { return sol.Marshal() }

// tombstoneCap bounds the per-shard memory of evicted-id records: the ids
// of the most recent evictions are remembered (ErrEvicted); beyond that a
// very old evicted id degrades to ErrUnknownRef. Ids are 8 bytes, so this
// keeps the "stay leak-free under load" property while still giving
// clients a useful diagnostic for any recent eviction.
const tombstoneCap = 4096

// Config tunes the service. The zero value means defaults.
type Config struct {
	// Shards is the lock-shard count for the reference table, rounded up
	// to a power of two. 0 means 16.
	Shards int
	// Capacity caps the number of parked unpinned references; beyond it
	// the least-recently-used unpinned reference is evicted (its snapshot
	// released, its id answering ErrEvicted). 0 means unbounded. Pinned
	// references and the root do not count against the cap. The bound is
	// strict as long as Capacity is at least the number of concurrent
	// Extends (reservation happens before insertion).
	Capacity int
	// Store attaches a persistence tier. With a store, capacity eviction
	// becomes demotion: the LRU victim is spilled to disk instead of
	// dropped, and Extend/Pin/Touch on a spilled id transparently reload
	// it (promote-on-access). A service opened over a store that already
	// holds manifests — a restarted server — answers those parked ids the
	// same way. The service does not close the store; the owner does,
	// after Service.Close (which demotes every live reference except the
	// reconstructible root).
	Store *store.Store
}

// Result reports one Extend call.
type Result struct {
	// ID is the opaque reference to the new problem.
	ID uint64
	// Verdict is the solver's answer for the extended problem.
	Verdict solver.Status
	// Model is the satisfying assignment (Verdict == Sat), indexed by
	// variable; index 0 unused.
	Model []bool
	// Learned is the number of retained learned clauses (diagnostics).
	Learned int
}

// Stats is a point-in-time snapshot of the service's counters and the
// physical-sharing footprint of everything parked.
type Stats struct {
	// Extends counts successfully served Extend calls.
	Extends uint64
	// Evictions counts references dropped by the capacity bound.
	Evictions uint64
	// Refs is the number of live references (pinned included).
	Refs int
	// Pinned is how many of those are pinned (root included).
	Pinned int
	// LiveSnapshots is the snapshot tree's live count.
	LiveSnapshots int64
	// Captures counts snapshots captured on the tree since it was created.
	Captures int64
	// CaptureNs is the cumulative wall time spent inside Tree.Capture —
	// the capture-stall budget the epoch protocol keeps O(1) per capture,
	// independent of the resident-set size of the captured lineage.
	CaptureNs int64
	// PrivateBytes / SharedBytes sum the physical footprint over every
	// parked snapshot — memory pages plus file blocks (the solver state
	// is parked as a file, so fs blocks carry most of it). Shared counts
	// storage physically shared with other snapshots: the paper's payoff,
	// siblings of one base problem costing a fraction of full copies.
	PrivateBytes int64
	SharedBytes  int64
	// Spills counts demotions to the persistence tier (capacity evictions
	// and Close-time demotes that left a cold copy behind).
	Spills uint64
	// SpillFailures counts demotions the store refused (disk full, I/O
	// error): those references degraded to plain evictions — dropped at
	// runtime (ErrEvicted) or lost at Close — so a nonzero value means
	// the cold tier is not capturing everything.
	SpillFailures uint64
	// Reloads counts promote-on-access loads of a spilled reference.
	Reloads uint64
	// ColdBytes is the persistence tier's physical chunk footprint on
	// disk (zero without a store).
	ColdBytes int64
	// ColdSharedRatio is the fraction of cold chunk references that dedup
	// onto chunks shared with other demoted snapshots — the on-disk twin
	// of SharedRatio.
	ColdSharedRatio float64
}

// Line renders the counters as the one-line diagnostic form shared by
// the text protocol's `stats` command and the binary protocol's stats
// reply, so both surfaces stay field-for-field identical.
func (st Stats) Line() string {
	return fmt.Sprintf("extends=%d evictions=%d refs=%d pinned=%d live-snapshots=%d captures=%d capture-ns=%d private-bytes=%d shared-bytes=%d shared-ratio=%.2f spills=%d spill-failures=%d reloads=%d cold-bytes=%d cold-shared-ratio=%.2f",
		st.Extends, st.Evictions, st.Refs, st.Pinned, st.LiveSnapshots,
		st.Captures, st.CaptureNs,
		st.PrivateBytes, st.SharedBytes, st.SharedRatio(),
		st.Spills, st.SpillFailures, st.Reloads, st.ColdBytes, st.ColdSharedRatio)
}

// SharedRatio is the fraction of parked pages shared between snapshots.
func (st Stats) SharedRatio() float64 {
	total := st.PrivateBytes + st.SharedBytes
	if total == 0 {
		return 0
	}
	return float64(st.SharedBytes) / float64(total)
}

// entry is one parked reference. All fields are guarded by the owning
// shard's mutex; the state itself is immutable and refcounted.
type entry struct {
	id      uint64
	state   *snapshot.State
	pinned  bool
	lastUse uint64 // logical clock tick of the last lookup (LRU)
	// demoting marks an entry whose spill to the persistence tier is in
	// flight: it is out of the LRU list (so no second evictor picks it)
	// but still in the table (so lookups keep answering). Exactly one
	// evictor owns a demoting entry end to end; only a client Release
	// can remove it from the table underneath that evictor.
	demoting bool
	// Intrusive per-shard LRU list links (unpinned entries only):
	// the shard's lruHead is its least recently used entry, so finding
	// an eviction victim is O(1) per shard instead of a map scan.
	prev, next *entry
	inLRU      bool
}

// shard is one lock stripe of the reference table.
type shard struct {
	mu sync.Mutex // lock_rank: 30 — innermost table lock; Store.mu may nest inside on spill
	// guarded_by: mu
	entries map[uint64]*entry

	// Per-shard LRU list of unpinned entries; head = least recently used.
	lruHead, lruTail *entry // guarded_by: mu

	// Ring of recently evicted ids (ErrEvicted tombstones), bounded by
	// tombstoneCap so eviction churn cannot grow memory without bound.
	evicted  map[uint64]struct{} // guarded_by: mu
	evictLog []uint64            // guarded_by: mu
	evictPos int                 // guarded_by: mu
}

// lruRemove unlinks e from the shard's LRU list. Callers hold sh.mu.
//
// locks_held: mu
// hot_path: pointer splicing on the lookup hit path.
func (sh *shard) lruRemove(e *entry) {
	if !e.inLRU {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.lruTail = e.prev
	}
	e.prev, e.next, e.inLRU = nil, nil, false
}

// lruPushBack appends e as the shard's most recently used entry.
// Callers hold sh.mu.
//
// locks_held: mu
// hot_path: pointer splicing on the lookup hit path.
func (sh *shard) lruPushBack(e *entry) {
	e.prev, e.next = sh.lruTail, nil
	if sh.lruTail != nil {
		sh.lruTail.next = e
	} else {
		sh.lruHead = e
	}
	sh.lruTail = e
	e.inLRU = true
}

// lruTouch moves e to the most-recently-used end. Callers hold sh.mu.
//
// locks_held: mu
// hot_path: two splices, no allocation.
func (sh *shard) lruTouch(e *entry) {
	sh.lruRemove(e)
	sh.lruPushBack(e)
}

// missing explains why id is absent from the shard: recently evicted ids
// answer ErrEvicted, everything else ErrUnknownRef. Callers hold sh.mu.
//
// locks_held: mu
func (sh *shard) missing(id uint64) error {
	if _, gone := sh.evicted[id]; gone {
		return fmt.Errorf("service: reference %d: %w", id, ErrEvicted)
	}
	return fmt.Errorf("service: %w %d", ErrUnknownRef, id)
}

// tombstone records id in the evicted ring. Callers hold sh.mu.
//
// locks_held: mu
func (sh *shard) tombstone(id uint64) {
	if sh.evicted == nil {
		sh.evicted = make(map[uint64]struct{})
	}
	if len(sh.evictLog) < tombstoneCap {
		sh.evictLog = append(sh.evictLog, id)
	} else {
		delete(sh.evicted, sh.evictLog[sh.evictPos])
		sh.evictLog[sh.evictPos] = id
		sh.evictPos = (sh.evictPos + 1) % tombstoneCap
	}
	sh.evicted[id] = struct{}{}
}

// Service is a multi-path incremental SAT solver safe for concurrent use.
type Service struct {
	shards []*shard
	mask   uint64

	tree  *snapshot.Tree
	alloc *mem.FrameAllocator

	nextID    atomic.Uint64
	clock     atomic.Uint64 // logical LRU clock
	parked    atomic.Int64  // unpinned entries (+ in-flight parks)
	pinned    atomic.Int64  // pinned entries (root included)
	capacity  int
	extends   atomic.Uint64
	evictions atomic.Uint64

	// Persistence tier (nil = evictions drop state, the pre-store mode).
	store      *store.Store
	spills     atomic.Uint64
	spillFails atomic.Uint64
	reloads    atomic.Uint64
	// idReserved is the durable id high-water mark already recorded in the
	// store's log: no restarted service will ever re-issue an id at or
	// below it, even if the id leaves no manifest behind (failed spill,
	// client Release). park pushes it ahead of nextID in batches of
	// idReserveBatch before an id is handed to a client, amortizing the
	// fsync to ~1/idReserveBatch per park.
	idReserved atomic.Uint64
	idResMu    sync.Mutex // lock_rank: 22 — Store.mu nests inside via ReserveIDs
	// reloadMu/reloading singleflight concurrent promote-on-access loads
	// of the same spilled id: the first caller reloads, the rest wait —
	// one disk walk, one Reloads increment, one table insert.
	reloadMu  sync.Mutex // lock_rank: 20 — leaf in practice; map ops only while held
	reloading map[uint64]*reloadCall

	// closeMu serializes Close against the lookup/park critical sections.
	// Extend holds it shared only around table touches — never across the
	// solve — so Close cannot interleave with a park, and every in-flight
	// solve is drained via the WaitGroup before the store is torn down.
	closeMu  sync.RWMutex // lock_rank: 10 — outermost: held (shared) around every table touch
	closed   bool
	inflight sync.WaitGroup
}

// New returns a service with default configuration (16 shards, unbounded
// capacity) whose root problem (reference 0) is empty.
func New() *Service { return NewWithConfig(Config{}) }

// NewWithConfig returns a service whose root problem (reference 0) is
// empty. The root is permanently pinned: it can be neither released nor
// evicted.
func NewWithConfig(cfg Config) *Service {
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shardFor is a mask, not a modulo;
	// clamp to a sane ceiling (shard count buys lock spread, not work).
	const maxShards = 1 << 12
	if n > maxShards {
		n = maxShards
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	s := &Service{
		shards:    make([]*shard, n),
		mask:      uint64(n - 1),
		tree:      snapshot.NewTree(),
		alloc:     mem.NewFrameAllocator(0),
		capacity:  cfg.Capacity,
		store:     cfg.Store,
		reloading: make(map[uint64]*reloadCall),
	}
	for i := range s.shards {
		s.shards[i] = &shard{entries: make(map[uint64]*entry)}
	}
	if s.store != nil {
		// Restart recovery: ids demoted by a previous process answer via
		// promote-on-access; fresh ids must start above every id the store
		// has ever known — resident manifests plus the durable high-water
		// mark, which covers ids whose manifests did not survive.
		floor := s.store.MaxID()
		s.nextID.Store(floor)
		s.idReserved.Store(floor)
	}
	// Root candidate: empty filesystem, empty solver. Pinned forever.
	as := mem.NewAddressSpace(s.alloc)
	ctx := &snapshot.Context{Mem: as, FS: fs.New()}
	//lint:ignore lockguard the service is not yet published to any other goroutine
	s.shardFor(0).entries[0] = &entry{id: 0, state: s.tree.Capture(ctx, nil), pinned: true}
	s.pinned.Store(1)
	ctx.Release()
	return s
}

// shardFor selects the shard owning id.
//
// hot_path: a mask and an index.
// inline:
func (s *Service) shardFor(id uint64) *shard { return s.shards[id&s.mask] }

// resolveMiss handles a lookup that found no live entry for id: a
// spilled id is promoted from the persistence tier (retry=true tells
// the caller to re-run its shard probe), anything else resolves to the
// shard's explanation of the absence. Callers hold closeMu shared but
// NOT sh.mu — Has can wait on a demotion's commit, and that wait must
// not stall the whole shard.
func (s *Service) resolveMiss(sh *shard, id uint64) (retry bool, err error) {
	if s.store != nil && s.store.Has(id) {
		if err := s.reload(id); err != nil {
			return false, err
		}
		return true, nil // promoted (or raced back out: the caller's loop decides)
	}
	sh.mu.Lock()
	err = sh.missing(id)
	sh.mu.Unlock()
	return false, err
}

// lookup retains the state behind id and bumps its LRU clock, and marks
// one in-flight operation. A spilled id is transparently promoted from
// the persistence tier first. On success the caller must Release the
// state and call s.inflight.Done().
//
// hot_path: locks=closeMu,mu the hit path is two short critical
// sections and two atomic bumps; the miss arm lives in resolveMiss.
func (s *Service) lookup(id uint64) (*snapshot.State, error) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	for {
		sh := s.shardFor(id)
		sh.mu.Lock()
		e, ok := sh.entries[id]
		if !ok {
			sh.mu.Unlock()
			//lint:ignore hotpath cold miss path: promote from the store or explain the absence
			retry, err := s.resolveMiss(sh, id)
			if retry {
				continue
			}
			return nil, err
		}
		e.lastUse = s.clock.Add(1)
		if !e.pinned && !e.demoting {
			sh.lruTouch(e)
		}
		st := e.state.Retain()
		sh.mu.Unlock()
		// Ordering: Add happens while closeMu is held shared and after the
		// closed check, so Close (exclusive lock, then Wait) cannot pass the
		// Wait before this operation registers.
		s.inflight.Add(1)
		return st, nil
	}
}

// reloadCall is one in-flight promote-on-access load, joined by every
// concurrent request for the same spilled id.
type reloadCall struct {
	done chan struct{}
	err  error
}

// reload promotes a spilled id back into the reference table exactly once
// per demotion: concurrent callers coalesce onto a single load. Callers
// hold closeMu shared.
func (s *Service) reload(id uint64) error {
	s.reloadMu.Lock()
	if c, ok := s.reloading[id]; ok {
		s.reloadMu.Unlock()
		<-c.done
		return c.err
	}
	c := &reloadCall{done: make(chan struct{})}
	s.reloading[id] = c
	s.reloadMu.Unlock()

	c.err = s.doReload(id)

	s.reloadMu.Lock()
	delete(s.reloading, id)
	s.reloadMu.Unlock()
	close(c.done)
	return c.err
}

// doReload materializes the demoted snapshot behind id and parks it as a
// live unpinned entry, enforcing the capacity bound the same way park
// does (reserve, then evict until the reservation fits — possibly
// demoting a colder entry to make room for the promoted one).
func (s *Service) doReload(id uint64) error {
	ctx, depth, err := s.store.Load(id, s.alloc)
	if err != nil {
		return err
	}
	st := s.tree.CaptureAtDepth(ctx, nil, depth)
	ctx.Release()

	s.parked.Add(1)
	if s.capacity > 0 {
		for s.parked.Load() > int64(s.capacity) {
			if !s.evictOne() {
				break
			}
		}
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	if _, exists := sh.entries[id]; exists {
		// Already resident (a racing epoch promoted it); drop our copy.
		sh.mu.Unlock()
		s.parked.Add(-1)
		st.Release()
		return nil
	}
	if !s.store.Has(id) {
		// The manifest vanished while we were loading: a concurrent
		// Release dropped the reference for good. Inserting now would
		// resurrect a released id, so abort instead. (Release mutates
		// the store under this shard's lock, so the check is ordered.)
		sh.mu.Unlock()
		s.parked.Add(-1)
		st.Release()
		return fmt.Errorf("service: %w %d", ErrUnknownRef, id)
	}
	e := &entry{id: id, state: st, lastUse: s.clock.Add(1)}
	sh.entries[id] = e
	sh.lruPushBack(e)
	sh.mu.Unlock()
	s.reloads.Add(1)
	return nil
}

// park inserts child behind a fresh id, enforcing the capacity bound by
// reserving a slot first and evicting LRU victims until the reservation
// fits. On ErrClosed the child has been released.
func (s *Service) park(child *snapshot.State) (uint64, error) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		child.Release()
		return 0, ErrClosed
	}
	// Reserve before inserting: the counter over-approximates the number
	// of unpinned entries, so evicting until it fits keeps the real entry
	// count at or under the cap at every instant.
	s.parked.Add(1)
	if s.capacity > 0 {
		for s.parked.Load() > int64(s.capacity) {
			if !s.evictOne() {
				break // everything evictable is a concurrent reservation or pinned
			}
		}
	}
	id := s.nextID.Add(1)
	if err := s.reserveID(id); err != nil {
		// The id's no-reuse guarantee could not be made durable; handing
		// it out anyway would let a restarted service re-issue it for a
		// different problem. Fail the park — the store is broken (disk
		// full, I/O error), so demotions would be failing too.
		s.parked.Add(-1)
		child.Release()
		return 0, err
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	e := &entry{id: id, state: child, lastUse: s.clock.Add(1)}
	sh.entries[id] = e
	sh.lruPushBack(e)
	sh.mu.Unlock()
	return id, nil
}

// idReserveBatch is how far past the issued ids park pushes the durable
// high-water mark: one fsynced log record reserves this many ids.
const idReserveBatch = 1024

// reserveID ensures the store's durable high-water mark covers id before
// it is handed to a client. No-op without a store or when a previous
// batch already covers id.
func (s *Service) reserveID(id uint64) error {
	if s.store == nil || id <= s.idReserved.Load() {
		return nil
	}
	s.idResMu.Lock()
	defer s.idResMu.Unlock()
	if id <= s.idReserved.Load() {
		return nil
	}
	target := id + idReserveBatch
	if err := s.store.ReserveIDs(target); err != nil {
		return fmt.Errorf("service: reserving id %d: %w", id, err)
	}
	s.idReserved.Store(target)
	return nil
}

// evictOne drops the least-recently-used unpinned reference: its snapshot
// is released (shrinking LiveSnapshots unless a child still chains to it)
// and its id is tombstoned to answer ErrEvicted. Returns false when no
// victim exists. The LRU is approximate under concurrency: a reference
// touched between the scan and the removal can still be chosen, which
// costs the client a re-derive, never correctness.
func (s *Service) evictOne() bool {
	// Each shard's LRU-list head is its own oldest unpinned entry, so the
	// global victim hunt is one O(1) head read per shard — not a scan of
	// the entries maps — and parks at capacity stay cheap.
	var victimShard *shard
	var victimID uint64
	var victimUse uint64
	found := false
	for _, sh := range s.shards {
		sh.mu.Lock()
		if h := sh.lruHead; h != nil && (!found || h.lastUse < victimUse) {
			found, victimShard, victimID, victimUse = true, sh, h.id, h.lastUse
		}
		sh.mu.Unlock()
	}
	if !found {
		return false
	}
	victimShard.mu.Lock()
	e, ok := victimShard.entries[victimID]
	if !ok || e.pinned {
		// Raced with a Release or Pin; the counter moved, so report
		// progress and let the caller re-check it.
		victimShard.mu.Unlock()
		return true
	}
	if s.store == nil {
		victimShard.lruRemove(e)
		delete(victimShard.entries, victimID)
		victimShard.tombstone(victimID)
		victimShard.mu.Unlock()
		s.parked.Add(-1)
		s.evictions.Add(1)
		e.state.Release()
		return true
	}
	// Demotion: claim the victim by pulling it off the LRU list and
	// marking it demoting — concurrent evictors then pick other victims,
	// and this evictor owns the entry's fate. The cold copy is written
	// off-lock while the entry stays visible (a concurrent lookup still
	// answers), then the entry is re-checked and unlinked. Spilling an id
	// already resident in the store — a promoted entry being re-demoted —
	// is a free no-op on the store side.
	victimShard.lruRemove(e)
	e.demoting = true
	st := e.state.Retain()
	victimShard.mu.Unlock()
	spillErr := s.store.Spill(victimID, st)
	victimShard.mu.Lock()
	e2, ok := victimShard.entries[victimID]
	switch {
	case !ok:
		// Only a client Release removes a demoting entry: the reference
		// was dropped on purpose, so the cold copy just written must not
		// resurrect it — Release's own purge may have run before the
		// spill landed. The Delete happens under the shard lock so it
		// orders against any in-flight promote of the same id.
		s.store.Delete(victimID)
		victimShard.mu.Unlock()
		st.Release()
		return true
	case e2 != e:
		// Release dropped the entry AND a promote raced the manifest back
		// in before this re-check (Release → spill lands → reload). The
		// resurrected entry is a released id: purge it from both tiers
		// (no tombstone — a released id answers ErrUnknownRef, not
		// ErrEvicted).
		victimShard.lruRemove(e2)
		delete(victimShard.entries, victimID)
		s.store.Delete(victimID)
		wasPinned := e2.pinned
		victimShard.mu.Unlock()
		if wasPinned {
			s.pinned.Add(-1)
		} else {
			s.parked.Add(-1)
		}
		e2.state.Release()
		st.Release()
		return true
	case e.pinned:
		// Raced with Pin: the entry stays live (Pin already moved the
		// parked count); the cold copy is harmless — immutable, purged on
		// Release — and makes the next demotion free.
		e.demoting = false
		victimShard.mu.Unlock()
		st.Release()
		return true
	}
	delete(victimShard.entries, victimID)
	e.demoting = false
	if spillErr != nil {
		// The cold tier refused (disk full, I/O error): fall back to a
		// plain eviction so the capacity bound still holds — the id then
		// answers ErrEvicted like the storeless mode.
		victimShard.tombstone(victimID)
	}
	victimShard.mu.Unlock()
	s.parked.Add(-1)
	s.evictions.Add(1)
	if spillErr == nil {
		s.spills.Add(1)
	} else {
		s.spillFails.Add(1)
	}
	e.state.Release()
	st.Release()
	return true
}

// Extend solves states[id] ∧ clauses and parks the result behind a new
// reference. The parent reference stays valid — callers can branch the
// same base problem many ways (the "multi-path" in the paper's name).
// ctx is observed between clause loads, between conflict-budget slices of
// the solve, and before parking: a cancelled or deadlined Extend returns
// ctx.Err() within one solve slice, without parking a reference or
// leaking a snapshot. A nil ctx means context.Background(). Extend never
// holds a lock across the solve, so concurrent Extends contend only when
// they touch the same table shard for the O(1) lookup/park steps.
func (s *Service) Extend(ctx context.Context, id uint64, clauses [][]int) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	parent, err := s.lookup(id)
	if err != nil {
		return Result{}, err
	}
	defer s.inflight.Done()
	defer parent.Release()

	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	cand := parent.Restore()
	defer cand.Release()

	var sol *solver.Solver
	if data, err := cand.FS.ReadFile(stateFile); err == nil {
		sol, err = solver.Unmarshal(data)
		if err != nil {
			return Result{}, fmt.Errorf("service: corrupt state for %d: %w", id, err)
		}
	} else {
		sol = solver.New(0)
	}
	for _, cl := range clauses {
		if err := sol.AddClause(cl...); err != nil {
			return Result{}, err
		}
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	// Solve in conflict-budget slices so a cancelled or deadlined ctx
	// interrupts even a hard instance mid-solve (learned clauses persist
	// across slices, so the chunking costs only the restart). This is
	// what lets a server drain in-flight extends on shutdown instead of
	// waiting out an unbounded solve.
	var verdict solver.Status
	for {
		verdict = sol.Solve(solveSliceConflicts)
		if verdict != solver.Unknown {
			break
		}
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	res := Result{Verdict: verdict, Learned: sol.NumLearnts()}
	if verdict == solver.Sat {
		res.Model = sol.Model()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// Block-aware update: only the state bytes this extension changed are
	// rewritten, so the common prefix (the base problem's clauses) stays
	// physically shared across the whole sibling set. A state too large
	// to park fails the whole Extend — no reference is parked, nothing
	// leaks, and the parent stays usable.
	if err := cand.FS.UpdateFile(stateFile, marshalState(sol)); err != nil {
		return Result{}, fmt.Errorf("service: parking state for extension of %d: %w", id, err)
	}

	res.ID, err = s.park(s.tree.Capture(cand, parent))
	if err != nil {
		return Result{}, err
	}
	s.extends.Add(1)
	return res, nil
}

// Release drops a problem reference — the live entry, and the cold copy
// if the persistence tier holds one (a spilled id is released without
// being promoted first). The root (id 0) is permanent and cannot be
// released.
func (s *Service) Release(id uint64) error {
	if id == 0 {
		return ErrRootPermanent
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	e, ok := sh.entries[id]
	if !ok {
		if s.store != nil && s.store.Has(id) {
			// Purge under the shard lock: a concurrent promote of the
			// same id inserts under this lock and re-checks the store,
			// so the release and the promote serialize instead of
			// resurrecting a released id.
			err := s.store.Delete(id)
			sh.mu.Unlock()
			return err
		}
		err := sh.missing(id)
		sh.mu.Unlock()
		return err
	}
	sh.lruRemove(e)
	delete(sh.entries, id)
	var delErr error
	if s.store != nil {
		// A promoted or demoting entry may have a cold copy (possibly
		// still landing — the owning evictor's post-spill re-check purges
		// that case); delete under the shard lock for the same ordering
		// reason as above.
		delErr = s.store.Delete(id)
	}
	sh.mu.Unlock()
	if e.pinned {
		s.pinned.Add(-1)
	} else {
		s.parked.Add(-1)
	}
	e.state.Release()
	return delErr
}

// Pin exempts a reference from capacity eviction (the root is always
// pinned). Pinning a spilled id promotes it first. Pinning is idempotent.
// Pins are process-local leases: they are not persisted, so after a
// restart every recovered reference starts unpinned.
func (s *Service) Pin(id uint64) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	for {
		sh := s.shardFor(id)
		sh.mu.Lock()
		e, ok := sh.entries[id]
		if !ok {
			sh.mu.Unlock()
			if s.store != nil && s.store.Has(id) {
				if err := s.reload(id); err != nil {
					return err
				}
				continue
			}
			sh.mu.Lock()
			err := sh.missing(id)
			sh.mu.Unlock()
			return err
		}
		if !e.pinned {
			e.pinned = true
			sh.lruRemove(e)
			s.parked.Add(-1)
			s.pinned.Add(1)
		}
		sh.mu.Unlock()
		return nil
	}
}

// Touch bumps a reference's LRU clock without extending it — a client
// keep-alive against capacity eviction, and a liveness probe. Touching a
// spilled id promotes it (the keep-alive would be meaningless cold).
// Returns nil for a live or spilled reference, ErrEvicted or
// ErrUnknownRef otherwise.
//
// hot_path: locks=closeMu,mu a keep-alive is lookup's hit path minus
// the Retain; the miss arm lives in resolveMiss.
func (s *Service) Touch(id uint64) error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	for {
		sh := s.shardFor(id)
		sh.mu.Lock()
		e, ok := sh.entries[id]
		if !ok {
			sh.mu.Unlock()
			//lint:ignore hotpath cold miss path: promote from the store or explain the absence
			retry, err := s.resolveMiss(sh, id)
			if retry {
				continue
			}
			return err
		}
		e.lastUse = s.clock.Add(1)
		if !e.pinned && !e.demoting {
			sh.lruTouch(e)
		}
		sh.mu.Unlock()
		return nil
	}
}

// Unpin makes a reference evictable again. The root cannot be unpinned.
// A spilled id is already unpinned (only unpinned entries demote), so
// unpinning it is a successful no-op without a promote.
func (s *Service) Unpin(id uint64) error {
	if id == 0 {
		return ErrRootPermanent
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	e, ok := sh.entries[id]
	if !ok {
		if s.store != nil && s.store.Has(id) {
			sh.mu.Unlock()
			return nil
		}
		err := sh.missing(id)
		sh.mu.Unlock()
		return err
	}
	if !e.pinned {
		sh.mu.Unlock()
		return nil
	}
	e.pinned = false
	e.lastUse = s.clock.Add(1)
	sh.lruPushBack(e)
	sh.mu.Unlock()
	s.pinned.Add(-1)
	if s.parked.Add(1) > int64(s.capacity) && s.capacity > 0 {
		s.evictOne()
	}
	return nil
}

// Counts reports the live reference and pinned counts without walking
// footprints — cheap enough to poll while the service is under load
// (the E13 bound sampler and monitoring loops use it instead of Stats).
func (s *Service) Counts() (refs, pinned int) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		refs += len(sh.entries)
		sh.mu.Unlock()
	}
	return refs, int(s.pinned.Load())
}

// Refs returns the number of live problem references.
func (s *Service) Refs() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// LiveSnapshots returns the snapshot tree's live count (diagnostics).
func (s *Service) LiveSnapshots() int64 { return s.tree.Live() }

// Stats gathers counters and the parked sharing footprint. The footprint
// walk runs off-lock against retained (frozen, read-safe) snapshots, so
// it can be polled while Extends are in flight.
func (s *Service) Stats() Stats {
	st := Stats{
		Extends:       s.extends.Load(),
		Evictions:     s.evictions.Load(),
		LiveSnapshots: s.tree.Live(),
		Captures:      s.tree.Created(),
		CaptureNs:     s.tree.CaptureNs(),
		Spills:        s.spills.Load(),
		SpillFailures: s.spillFails.Load(),
		Reloads:       s.reloads.Load(),
	}
	if s.store != nil {
		cold := s.store.Stats()
		st.ColdBytes = cold.ColdBytes
		st.ColdSharedRatio = cold.DedupRatio()
	}
	var held []*snapshot.State
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, e := range sh.entries {
			st.Refs++
			if e.pinned {
				st.Pinned++
			}
			held = append(held, e.state.Retain())
		}
		sh.mu.Unlock()
	}
	for _, state := range held {
		fp := state.Footprint()
		priv, shared := state.FS().Footprint()
		st.PrivateBytes += fp.PrivateBytes() + priv
		st.SharedBytes += fp.SharedBytes() + shared
		state.Release()
	}
	return st
}

// Close shuts the service down gracefully: new Extends are refused with
// ErrClosed; in-flight Extends drain first — one that finishes its solve
// after Close began returns ErrClosed without parking a reference — and
// then every parked reference is released. With a persistence tier
// attached, every live reference except the root is demoted first (the
// root is the reconstructible empty problem), so a successor service
// opened over the same store answers every id this one held. After Close
// returns, LiveSnapshots reports 0. Close is idempotent; the store is
// left open for the owner to close.
func (s *Service) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	s.inflight.Wait()

	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, e := range sh.entries {
			if s.store != nil && id != 0 {
				if err := s.store.Spill(id, e.state); err == nil {
					s.spills.Add(1)
				} else {
					// The reference is about to be released with no cold
					// copy: count the loss so operators (solversvc warns
					// at shutdown) know the successor will answer this id
					// with ErrUnknownRef.
					s.spillFails.Add(1)
				}
			}
			e.state.Release()
			delete(sh.entries, id)
		}
		sh.lruHead, sh.lruTail = nil, nil
		sh.evicted, sh.evictLog, sh.evictPos = nil, nil, 0
		sh.mu.Unlock()
	}
	s.parked.Store(0)
	s.pinned.Store(0)
}
