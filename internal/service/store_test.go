package service

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/solver"
	"repro/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEvictionDemotesInsteadOfDropping: with a store attached, the LRU
// victim of a capacity eviction spills to disk and its id keeps working —
// no ErrEvicted, one reload, identical verdict to the storeless world.
func TestEvictionDemotesInsteadOfDropping(t *testing.T) {
	cold := openStore(t, t.TempDir())
	defer cold.Close()
	svc := NewWithConfig(Config{Capacity: 1, Store: cold})
	defer svc.Close()

	r1, err := svc.Extend(context.Background(), 0, [][]int{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Parking a second reference demotes the first (capacity 1).
	r2, err := svc.Extend(context.Background(), 0, [][]int{{3}})
	if err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Spills == 0 || st.Evictions == 0 {
		t.Fatalf("no demotion happened: %+v", st)
	}
	if !cold.Has(r1.ID) {
		t.Fatalf("victim %d not in store", r1.ID)
	}

	// The demoted id transparently promotes on Extend — and must never
	// answer ErrEvicted.
	r3, err := svc.Extend(context.Background(), r1.ID, [][]int{{-1}})
	if err != nil {
		t.Fatalf("extend of demoted id: %v", err)
	}
	if r3.Verdict != solver.Sat {
		t.Fatalf("verdict = %v", r3.Verdict)
	}
	if got := svc.Stats(); got.Reloads == 0 {
		t.Fatalf("no reload recorded: %+v", got)
	}
	_ = r2
	svc.Close()
	if live := svc.LiveSnapshots(); live != 0 {
		t.Fatalf("%d snapshots leaked", live)
	}
}

// TestConcurrentExtendReloadsOnce: 8 goroutines race Extend on one
// spilled id. The singleflight must load it exactly once (one Reloads
// increment), every Extend must succeed, and teardown must leak nothing —
// a double-retain or double-insert would trip the snapshot refcount
// panics or the leak check.
func TestConcurrentExtendReloadsOnce(t *testing.T) {
	dir := t.TempDir()
	cold := openStore(t, dir)
	defer cold.Close()

	// Park one reference, then Close: the service demotes it, leaving a
	// store in exactly the "restarted server" shape — id known, table
	// empty — with no eviction noise to perturb the reload count.
	svc1 := NewWithConfig(Config{Store: cold})
	r1, err := svc1.Extend(context.Background(), 0, [][]int{{1, 2}, {-1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	svc1.Close()
	if !cold.Has(r1.ID) {
		t.Fatal("Close did not demote the parked reference")
	}

	svc2 := NewWithConfig(Config{Store: cold})
	defer svc2.Close()
	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			r, err := svc2.Extend(context.Background(), r1.ID, [][]int{{3}})
			if err == nil && r.Verdict != solver.Sat {
				err = errors.New("wrong verdict")
			}
			errs[i] = err
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	st := svc2.Stats()
	if st.Reloads != 1 {
		t.Fatalf("Reloads = %d, want exactly 1", st.Reloads)
	}
	if st.Extends != workers {
		t.Fatalf("Extends = %d, want %d", st.Extends, workers)
	}
	svc2.Close()
	if live := svc2.LiveSnapshots(); live != 0 {
		t.Fatalf("%d snapshots leaked after teardown", live)
	}
}

// TestRestartRecovery closes the service AND the store, reopens the
// directory (forcing a manifest-log replay), and checks a new service
// answers the old ids with identical verdicts and issues non-colliding
// fresh ids.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	cold := openStore(t, dir)
	svc1 := NewWithConfig(Config{Store: cold})

	base, err := svc1.Extend(context.Background(), 0, [][]int{{1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := svc1.Extend(context.Background(), base.ID, [][]int{{-2}})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := svc1.Extend(context.Background(), mid.ID, [][]int{{-3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth for the post-restart extension, computed pre-restart.
	want, err := svc1.Extend(context.Background(), leaf.ID, [][]int{{-1}})
	if err != nil {
		t.Fatal(err)
	}
	svc1.Close()
	if live := svc1.LiveSnapshots(); live != 0 {
		t.Fatalf("%d snapshots leaked at shutdown", live)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": everything in-memory is gone; only the directory remains.
	cold2 := openStore(t, dir)
	defer cold2.Close()
	svc2 := NewWithConfig(Config{Store: cold2})
	defer svc2.Close()

	got, err := svc2.Extend(context.Background(), leaf.ID, [][]int{{-1}})
	if err != nil {
		t.Fatalf("extend of recovered id: %v", err)
	}
	if got.Verdict != want.Verdict {
		t.Fatalf("verdict across restart = %v, want %v", got.Verdict, want.Verdict)
	}
	if got.ID <= want.ID {
		t.Fatalf("fresh id %d collides with pre-restart ids (max %d)", got.ID, want.ID)
	}
	// Mid-chain ids recovered too, and keep-alives work on them.
	if err := svc2.Touch(mid.ID); err != nil {
		t.Fatalf("touch of recovered mid-chain id: %v", err)
	}
	if err := svc2.Pin(base.ID); err != nil {
		t.Fatalf("pin of recovered id: %v", err)
	}
	if st := svc2.Stats(); st.Pinned != 2 { // root + base
		t.Fatalf("pinned = %d", st.Pinned)
	}
	svc2.Close()
	if live := svc2.LiveSnapshots(); live != 0 {
		t.Fatalf("%d snapshots leaked after restarted teardown", live)
	}
}

// TestRestartNeverReusesReleasedID: an id that leaves no manifest behind
// (here: released before Close) must never be re-issued by a restarted
// service — a client still holding it would silently get answers for a
// different problem. The durable id high-water mark (reserved in batches
// ahead of issuance) keeps the restart floor above every id ever handed
// out, not just those with surviving manifests.
func TestRestartNeverReusesReleasedID(t *testing.T) {
	dir := t.TempDir()
	cold := openStore(t, dir)
	svc1 := NewWithConfig(Config{Store: cold})
	r1, err := svc1.Extend(context.Background(), 0, [][]int{{1}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := svc1.Extend(context.Background(), 0, [][]int{{2}})
	if err != nil {
		t.Fatal(err)
	}
	// r2 will leave no manifest: released live, never spilled.
	if err := svc1.Release(r2.ID); err != nil {
		t.Fatal(err)
	}
	svc1.Close()
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	cold2 := openStore(t, dir)
	defer cold2.Close()
	svc2 := NewWithConfig(Config{Store: cold2})
	defer svc2.Close()
	if err := svc2.Touch(r2.ID); !errors.Is(err, ErrUnknownRef) {
		t.Fatalf("touch of released id after restart = %v, want ErrUnknownRef", err)
	}
	r3, err := svc2.Extend(context.Background(), 0, [][]int{{3}})
	if err != nil {
		t.Fatal(err)
	}
	if r3.ID <= r2.ID {
		t.Fatalf("restarted service issued id %d at or below released id %d", r3.ID, r2.ID)
	}
	// The released id stays dead even after fresh issuance.
	if err := svc2.Touch(r2.ID); !errors.Is(err, ErrUnknownRef) {
		t.Fatalf("released id resurrected: %v", err)
	}
	_ = r1
}

// TestReleaseSpilledPurgesColdCopy: releasing a demoted id removes the
// manifest, so the id is gone for good (unknown, not evicted) and a
// restart cannot resurrect it.
func TestReleaseSpilledPurgesColdCopy(t *testing.T) {
	dir := t.TempDir()
	cold := openStore(t, dir)
	svc := NewWithConfig(Config{Capacity: 1, Store: cold})
	r1, err := svc.Extend(context.Background(), 0, [][]int{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Extend(context.Background(), 0, [][]int{{2}}); err != nil {
		t.Fatal(err)
	}
	if !cold.Has(r1.ID) {
		t.Fatal("first reference not demoted")
	}
	if err := svc.Release(r1.ID); err != nil {
		t.Fatalf("release of spilled id: %v", err)
	}
	if cold.Has(r1.ID) {
		t.Fatal("cold copy survived release")
	}
	if err := svc.Touch(r1.ID); !errors.Is(err, ErrUnknownRef) {
		t.Fatalf("touch after release = %v, want ErrUnknownRef", err)
	}
	svc.Close()
	cold.Close()
	cold2 := openStore(t, dir)
	defer cold2.Close()
	if cold2.Has(r1.ID) {
		t.Fatal("released id resurrected by replay")
	}
}

// TestSpilledUnpinIsNoop: a spilled id is definitionally unpinned; Unpin
// succeeds without promoting it.
func TestSpilledUnpinIsNoop(t *testing.T) {
	cold := openStore(t, t.TempDir())
	defer cold.Close()
	svc := NewWithConfig(Config{Capacity: 1, Store: cold})
	defer svc.Close()
	r1, err := svc.Extend(context.Background(), 0, [][]int{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Extend(context.Background(), 0, [][]int{{2}}); err != nil {
		t.Fatal(err)
	}
	if !cold.Has(r1.ID) {
		t.Fatal("not demoted")
	}
	if err := svc.Unpin(r1.ID); err != nil {
		t.Fatalf("unpin of spilled id: %v", err)
	}
	if st := svc.Stats(); st.Reloads != 0 {
		t.Fatalf("unpin promoted the id: %+v", st)
	}
}

// TestStorelessEvictionStillAnswersErrEvicted pins the pre-store
// contract: without a store, eviction drops state and the id answers
// ErrEvicted.
func TestStorelessEvictionStillAnswersErrEvicted(t *testing.T) {
	svc := NewWithConfig(Config{Capacity: 1})
	defer svc.Close()
	r1, err := svc.Extend(context.Background(), 0, [][]int{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Extend(context.Background(), 0, [][]int{{2}}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Touch(r1.ID); !errors.Is(err, ErrEvicted) {
		t.Fatalf("touch of dropped id = %v, want ErrEvicted", err)
	}
}
