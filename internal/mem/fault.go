package mem

import "fmt"

// FaultKind classifies a memory fault.
type FaultKind uint8

// Fault kinds. CoW faults are handled internally (they copy the page and
// the access proceeds); only the kinds below surface to the guest.
const (
	// FaultNotMapped: the address lies in no mapped region.
	FaultNotMapped FaultKind = iota
	// FaultProtection: the region is mapped but forbids the access.
	FaultProtection
	// FaultBadAddress: the address exceeds the virtual address width.
	FaultBadAddress
	// FaultOOM: the frame allocator is exhausted.
	FaultOOM
)

func (k FaultKind) String() string {
	switch k {
	case FaultNotMapped:
		return "not-mapped"
	case FaultProtection:
		return "protection"
	case FaultBadAddress:
		return "bad-address"
	case FaultOOM:
		return "out-of-memory"
	}
	return "fault?"
}

// Fault is the software equivalent of a page-fault exception delivered to
// the libOS. It satisfies error so memory accessors can return it directly.
type Fault struct {
	Kind   FaultKind
	Addr   uint64
	Access Access
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mem: %s fault on %s at %#x", f.Kind, f.Access, f.Addr)
}

// IsFault reports whether err is a memory fault and returns it if so.
func IsFault(err error) (*Fault, bool) {
	f, ok := err.(*Fault)
	return f, ok
}
