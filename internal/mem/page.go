// Package mem implements the simulated virtual-memory subsystem that
// lightweight snapshots integrate with: 4 KiB pages, refcounted physical
// frames, and persistent (path-copying) 4-level radix page tables that make
// snapshot creation O(1) and charge copy-on-write faults only for pages a
// candidate extension actually touches.
//
// The package stands in for the nested-page-table + Dune layer of the paper:
// instead of EPT violations handled at non-root ring 0, writes to shared
// state take a software CoW fault that copies exactly one 4 KiB page, which
// preserves the cost model (faults proportional to pages touched) that the
// paper's granularity and locality arguments rest on.
package mem

// Address-space geometry. SVX64 uses 48-bit guest-virtual addresses split
// x86-style into four 9-bit radix levels over 4 KiB pages.
const (
	// PageShift is log2 of the page size.
	PageShift = 12
	// PageSize is the size of a guest page and of a physical frame.
	PageSize = 1 << PageShift
	// PageMask extracts the offset within a page.
	PageMask = PageSize - 1

	levelBits = 9
	levelSize = 1 << levelBits
	levelMask = levelSize - 1
	numLevels = 4

	// VABits is the number of significant guest-virtual address bits.
	VABits = numLevels*levelBits + PageShift
	// MaxVA is one past the highest valid guest-virtual address.
	MaxVA = uint64(1) << VABits
)

// PageFloor rounds addr down to a page boundary.
func PageFloor(addr uint64) uint64 { return addr &^ uint64(PageMask) }

// PageCeil rounds addr up to a page boundary. It saturates at MaxVA.
func PageCeil(addr uint64) uint64 {
	if addr > MaxVA-PageSize {
		return MaxVA
	}
	return (addr + PageMask) &^ uint64(PageMask)
}

// PageNumber returns the virtual page number containing addr.
func PageNumber(addr uint64) uint64 { return addr >> PageShift }

// levelIndex returns the radix index of addr at the given level.
// Level numLevels-1 is the root, level 0 holds PTEs.
// hot_path: shift-and-mask arithmetic.
// inline:
func levelIndex(addr uint64, level int) int {
	return int((addr >> (PageShift + uint(level)*levelBits)) & levelMask)
}

// Perm is a page-protection bit set. Protection is tracked per region
// (VMA); the hardware analogue would fold these bits into each PTE, but
// region-granular checks observe the same faults for the workloads we model.
type Perm uint8

// Protection bits.
const (
	PermRead  Perm = 1 << iota // region may be read
	PermWrite                  // region may be written
	PermExec                   // region may be executed

	// PermRW is the common read+write protection.
	PermRW = PermRead | PermWrite
	// PermRX is the common read+execute protection.
	PermRX = PermRead | PermExec
	// PermRWX grants everything.
	PermRWX = PermRead | PermWrite | PermExec
)

// Can reports whether p grants every bit in want.
func (p Perm) Can(want Perm) bool { return p&want == want }

func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Access describes the kind of memory access that caused a fault.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return "access?"
}

// perm returns the protection bit an access requires.
func (a Access) perm() Perm {
	switch a {
	case AccessWrite:
		return PermWrite
	case AccessExec:
		return PermExec
	default:
		return PermRead
	}
}
