package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
)

// VMA is a mapped virtual-memory region [Start, End) with region-granular
// protection, the software analogue of a kernel vm_area_struct.
type VMA struct {
	Start uint64
	End   uint64
	Perm  Perm
	Name  string
}

// Size returns the region length in bytes.
func (v VMA) Size() uint64 { return v.End - v.Start }

func (v VMA) contains(addr uint64) bool { return addr >= v.Start && addr < v.End }

// AddressSpace is one mutable guest address space: a VMA list plus a
// persistent page table and a software TLB caching hot translations (see
// tlb.go). Forking an address space is O(1): the fork shares the
// page-table root, starts a new snapshot epoch, and both sides
// copy-on-write from then on.
//
// An AddressSpace is owned by a single goroutine — reads fill the TLB, so
// even read-only use mutates internal state. The exceptions are a sealed
// space (Seal), whose reads go through a lock-free shared cache and which
// may therefore be read and forked from many goroutines at once, and the
// *shared* structures underneath (frames, table nodes), whose atomic
// refcounts let address spaces forked from a common snapshot run on
// different goroutines concurrently.
type AddressSpace struct {
	pt  pageTable
	tlb tlb
	// sealed marks a settled snapshot view: the space is shared across
	// goroutines, must never be written, and serves reads through stlb.
	// Set once by Seal before the space is published; never cleared.
	sealed bool
	// stlb is the sealed-read cache, allocated lazily on the first sealed
	// read miss. It is its own structure (not the single-owner tlb) because
	// concurrent restorers and inspectors fill it racily; see sealedTLB.
	stlb  atomic.Pointer[sealedTLB]
	vmas  []VMA // sorted by Start, non-overlapping
	brk   uint64
	stats Stats
}

// epochCounter issues process-wide snapshot-epoch tokens. Tokens are
// globally unique across address spaces (not per-space sequence numbers),
// so a frame stamp can be compared against any space's current epoch
// without tracking which space issued it.
var epochCounter atomic.Uint64

// nextEpoch issues the next process-wide epoch token.
// hot_path: one atomic increment.
func nextEpoch() uint64 { return epochCounter.Add(1) }

// NewAddressSpace returns an empty address space drawing frames from alloc.
func NewAddressSpace(alloc *FrameAllocator) *AddressSpace {
	return &AddressSpace{pt: pageTable{alloc: alloc, epoch: nextEpoch()}}
}

// Alloc returns the frame allocator backing this space.
func (as *AddressSpace) Alloc() *FrameAllocator { return as.pt.alloc }

// Stats returns the event counters accumulated by this space, folding in
// the TLB hit/miss counters kept alongside the TLB entries and, for a
// sealed space, the shared read-cache counters.
func (as *AddressSpace) Stats() Stats {
	s := as.stats
	s.TLBHits = as.tlb.hits
	s.TLBMisses = as.tlb.misses
	if st := as.stlb.Load(); st != nil {
		s.TLBHits += st.hits.Load()
		s.TLBMisses += st.misses.Load()
	}
	return s
}

// ResetStats zeroes the event counters (benchmark plumbing).
func (as *AddressSpace) ResetStats() {
	as.stats = Stats{}
	as.tlb.hits, as.tlb.misses = 0, 0
	if st := as.stlb.Load(); st != nil {
		st.hits.Store(0)
		st.misses.Store(0)
	}
}

// Epoch returns the space's current snapshot-epoch token.
func (as *AddressSpace) Epoch() uint64 { return as.pt.epoch }

// Sealed reports whether Seal has been called on this space.
func (as *AddressSpace) Sealed() bool { return as.sealed }

// AdvanceEpoch starts a new snapshot epoch and returns its token. Every
// write-TLB entry filled under the previous epoch goes stale in O(1) (the
// probe compares epochs), and every subsequent write re-resolves through
// the fault path, restamping its frame with the new token — which is what
// lets captures and incremental checkpoints detect "written since" by
// comparing frame stamps. On a sealed space this is a no-op returning the
// current token: sealed spaces are shared read-only and must not be
// mutated, and since they take no writes their dirty set is empty anyway.
//
// bumps_epoch
// hot_path: the O(1) capture primitive — a branch, an atomic increment,
// and two stores.
func (as *AddressSpace) AdvanceEpoch() uint64 {
	if as.sealed {
		return as.pt.epoch
	}
	as.pt.epoch = nextEpoch()
	as.stats.Epochs++
	return as.pt.epoch
}

// Seal marks the space as a settled snapshot view that may be shared
// across goroutines: the single-owner TLB is flushed and disabled, writes
// fault, and subsequent reads are served (and cached) through a lock-free
// read-only cache, so concurrent Restore forks and inspectors neither
// mutate unsynchronized state nor pay a radix walk per read. Capture paths
// call this on the fork they publish; it replaces the old Freeze protocol,
// which disabled caching entirely and made every shared-state read a full
// table walk.
//
// sharing_boundary: the space becomes shared across goroutines.
// flushes_tlb
func (as *AddressSpace) Seal() {
	as.tlb.off = true
	as.tlb.flush()
	as.sealed = true
}

// SetTLBEnabled toggles the software TLB (benchmark plumbing: the disabled
// state measures the pre-TLB walk-per-access baseline). Disabling flushes
// every entry; hit/miss counters stop advancing while disabled. No-op on a
// sealed space, whose single-owner TLB must stay inert.
func (as *AddressSpace) SetTLBEnabled(on bool) {
	if as.sealed {
		return
	}
	as.tlb.off = !on
	if !on {
		as.tlb.flush()
	}
}

// VMAs returns a copy of the region list.
func (as *AddressSpace) VMAs() []VMA {
	out := make([]VMA, len(as.vmas))
	copy(out, as.vmas)
	return out
}

// findVMA returns the region containing addr, or nil.
func (as *AddressSpace) findVMA(addr uint64) *VMA {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > addr })
	if i < len(as.vmas) && as.vmas[i].contains(addr) {
		return &as.vmas[i]
	}
	return nil
}

// Map establishes a new region at [start, start+length) with the given
// protection. start and length must be page aligned, the range must lie
// within the virtual address width and must not overlap an existing region.
func (as *AddressSpace) Map(start, length uint64, perm Perm, name string) error {
	if start&PageMask != 0 || length&PageMask != 0 {
		return fmt.Errorf("mem: Map %q: unaligned range [%#x,+%#x)", name, start, length)
	}
	if length == 0 {
		return fmt.Errorf("mem: Map %q: empty range", name)
	}
	end := start + length
	if end > MaxVA || end < start {
		return &Fault{Kind: FaultBadAddress, Addr: start}
	}
	for i := range as.vmas {
		v := &as.vmas[i]
		if start < v.End && v.Start < end {
			return fmt.Errorf("mem: Map %q: [%#x,%#x) overlaps %q [%#x,%#x)",
				name, start, end, v.Name, v.Start, v.End)
		}
	}
	as.vmas = append(as.vmas, VMA{Start: start, End: end, Perm: perm, Name: name})
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
	return nil
}

// Unmap removes the page-aligned range [start, start+length), splitting
// regions that straddle it and dropping the backing frames.
//
// sharing_boundary: cached translations and permissions go stale.
func (as *AddressSpace) Unmap(start, length uint64) error {
	if start&PageMask != 0 || length&PageMask != 0 {
		return fmt.Errorf("mem: Unmap: unaligned range [%#x,+%#x)", start, length)
	}
	end := start + length
	if end > MaxVA || end < start {
		return &Fault{Kind: FaultBadAddress, Addr: start}
	}
	var out []VMA
	for _, v := range as.vmas {
		switch {
		case v.End <= start || v.Start >= end: // untouched
			out = append(out, v)
		case v.Start < start && v.End > end: // split
			out = append(out,
				VMA{Start: v.Start, End: start, Perm: v.Perm, Name: v.Name},
				VMA{Start: end, End: v.End, Perm: v.Perm, Name: v.Name})
		case v.Start < start: // trim tail
			out = append(out, VMA{Start: v.Start, End: start, Perm: v.Perm, Name: v.Name})
		case v.End > end: // trim head
			out = append(out, VMA{Start: end, End: v.End, Perm: v.Perm, Name: v.Name})
		default: // fully covered
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	as.vmas = out
	for addr := start; addr < end; addr += PageSize {
		as.pt.clearPage(addr, &as.stats)
	}
	as.tlb.flush() // cached translations and permissions are stale
	return nil
}

// Protect changes the protection of the page-aligned range, which must be
// fully mapped. Regions are split as needed (mprotect semantics).
//
// sharing_boundary: cached entries encode the old permissions.
func (as *AddressSpace) Protect(start, length uint64, perm Perm) error {
	if start&PageMask != 0 || length&PageMask != 0 {
		return fmt.Errorf("mem: Protect: unaligned range [%#x,+%#x)", start, length)
	}
	end := start + length
	if end > MaxVA || end < start {
		return &Fault{Kind: FaultBadAddress, Addr: start}
	}
	for addr := start; addr < end; {
		v := as.findVMA(addr)
		if v == nil {
			return &Fault{Kind: FaultNotMapped, Addr: addr}
		}
		addr = v.End
	}
	var out []VMA
	for _, v := range as.vmas {
		if v.End <= start || v.Start >= end {
			out = append(out, v)
			continue
		}
		if v.Start < start {
			out = append(out, VMA{Start: v.Start, End: start, Perm: v.Perm, Name: v.Name})
		}
		lo, hi := max(v.Start, start), min(v.End, end)
		out = append(out, VMA{Start: lo, End: hi, Perm: perm, Name: v.Name})
		if v.End > end {
			out = append(out, VMA{Start: end, End: v.End, Perm: v.Perm, Name: v.Name})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	as.vmas = out
	as.tlb.flush() // cached entries encode the old permissions
	return nil
}

// InitBrk establishes the program break for a heap region created by Map.
func (as *AddressSpace) InitBrk(brk uint64) { as.brk = brk }

// Brk implements the brk system call against the region named "heap":
// newBrk == 0 queries; growth extends the heap VMA (page-rounded); shrink
// unmaps the tail. Returns the resulting break.
func (as *AddressSpace) Brk(newBrk uint64) (uint64, error) {
	if newBrk == 0 {
		return as.brk, nil
	}
	var heap *VMA
	for i := range as.vmas {
		if as.vmas[i].Name == "heap" {
			heap = &as.vmas[i]
			break
		}
	}
	if heap == nil {
		return as.brk, fmt.Errorf("mem: Brk: no heap region")
	}
	if newBrk < heap.Start {
		return as.brk, fmt.Errorf("mem: Brk: %#x below heap base %#x", newBrk, heap.Start)
	}
	if newBrk > MaxVA {
		// Like Map/Unmap/Protect: never report success for a range the
		// address space cannot grant (PageCeil would silently clamp).
		return as.brk, &Fault{Kind: FaultBadAddress, Addr: newBrk}
	}
	newEnd := PageCeil(newBrk)
	if newEnd > heap.End {
		// Refuse to grow into a neighbouring region.
		for _, v := range as.vmas {
			if v.Start >= heap.End && v.Start < newEnd {
				return as.brk, fmt.Errorf("mem: Brk: heap would collide with %q", v.Name)
			}
		}
		heap.End = newEnd
	} else if newEnd < heap.End {
		as.shrinkHeap(heap, newEnd)
	}
	as.brk = newBrk
	return as.brk, nil
}

// shrinkHeap trims the heap region to newEnd, dropping the frames of the
// unmapped tail. Split out of Brk because only the shrink direction
// changes sharing: growth maps nothing.
//
// sharing_boundary: dropped frames may still be cached.
func (as *AddressSpace) shrinkHeap(heap *VMA, newEnd uint64) {
	start := newEnd
	end := heap.End
	heap.End = newEnd
	for addr := start; addr < end; addr += PageSize {
		as.pt.clearPage(addr, &as.stats)
	}
	as.tlb.flush()
}

// check validates an n-byte access at addr, returning the fault that a real
// MMU would raise, or nil. The range may span multiple contiguous VMAs; the
// permission verdict for each VMA covers every page of the access inside
// it, so one call validates the whole range regardless of page count.
// cheap: a short VMA binary search per access; faults allocate only on
// the error path.
func (as *AddressSpace) check(addr uint64, n int, access Access) error {
	if n == 0 {
		return nil
	}
	end := addr + uint64(n)
	if end > MaxVA || end < addr {
		return &Fault{Kind: FaultBadAddress, Addr: addr, Access: access}
	}
	want := access.perm()
	for a := addr; a < end; {
		v := as.findVMA(a)
		if v == nil {
			return &Fault{Kind: FaultNotMapped, Addr: a, Access: access}
		}
		if !v.Perm.Can(want) {
			return &Fault{Kind: FaultProtection, Addr: a, Access: access}
		}
		a = v.End
	}
	return nil
}

// checkMapped validates that every page of the n-byte range at addr is
// mapped, ignoring protection — the kernel/loader counterpart of check,
// used by WriteForce to populate read-only, exec-only and write-only
// segments.
func (as *AddressSpace) checkMapped(addr uint64, n int) error {
	if n == 0 {
		return nil
	}
	end := addr + uint64(n)
	if end > MaxVA || end < addr {
		return &Fault{Kind: FaultBadAddress, Addr: addr, Access: AccessWrite}
	}
	for a := addr; a < end; {
		v := as.findVMA(a)
		if v == nil {
			return &Fault{Kind: FaultNotMapped, Addr: a, Access: AccessWrite}
		}
		a = v.End
	}
	return nil
}

// ReadAt copies len(p) bytes at addr into p, observing region protection.
// Unwritten pages read as zeroes (demand-zero).
// hot_path: the guest load entry point.
func (as *AddressSpace) ReadAt(p []byte, addr uint64) error {
	return as.read(p, addr, AccessRead)
}

// FetchAt is ReadAt with execute permission, used for instruction fetch.
// hot_path: the instruction-fetch entry point.
func (as *AddressSpace) FetchAt(p []byte, addr uint64) error {
	return as.read(p, addr, AccessExec)
}

// read is the shared guest read loop.
// hot_path: a TLB hit is a tag compare plus copy; every callee is hot
// or cheap.
func (as *AddressSpace) read(p []byte, addr uint64, access Access) error {
	n := len(p)
	if n == 0 {
		return nil
	}
	if as.sealed {
		return as.readSealed(p, addr, access)
	}
	// TLB fast path: a single-page read whose page is cached needs no VMA
	// check (the entry asserts PermRead) and no radix walk.
	if access == AccessRead {
		if off := int(addr & PageMask); off+n <= PageSize {
			if f, ok := as.tlb.readFrame(addr >> PageShift); ok {
				if f != nil {
					copy(p, f.Data[off:off+n])
				} else {
					clear(p)
				}
				return nil
			}
		}
	}
	if err := as.check(addr, n, access); err != nil {
		return err
	}
	for len(p) > 0 {
		off := int(addr & PageMask)
		k := min(PageSize-off, len(p))
		var f *Frame
		if access == AccessRead {
			var ok bool
			if f, ok = as.tlb.readFrame(addr >> PageShift); !ok {
				f = lookup(as.pt.root, addr)
				as.tlb.fillRead(addr>>PageShift, f)
			}
		} else {
			// Instruction fetches stay out of the TLB and its hit/miss
			// accounting; the CPU keeps its own fetch TLB.
			f = lookup(as.pt.root, addr)
		}
		if f != nil {
			copy(p[:k], f.Data[off:off+k])
		} else {
			clear(p[:k])
		}
		p = p[k:]
		addr += uint64(k)
	}
	return nil
}

// WriteAt stores p at addr, observing region protection. Writes to pages
// shared with a snapshot take a CoW fault and copy the page first. The
// common case — repeated stores to a page this space already privately
// owns — hits the software TLB and touches no page-table state at all.
// hot_path: the guest store entry point.
func (as *AddressSpace) WriteAt(p []byte, addr uint64) error {
	n := len(p)
	if n == 0 {
		return nil
	}
	// TLB fast path: single-page store to a page this space privately
	// owned within the current snapshot epoch.
	if off := int(addr & PageMask); off+n <= PageSize {
		if f, ok := as.tlb.writeFrame(addr>>PageShift, as.pt.epoch); ok {
			copy(f.Data[off:off+n], p)
			return nil
		}
	}
	if err := as.check(addr, n, AccessWrite); err != nil {
		return err
	}
	return as.writePages(p, addr, false)
}

// WriteForce stores p at addr ignoring write protection (the range must
// still be mapped, but may be read-only, exec-only or write-only). This is
// the kernel/loader path used to populate segments; guest-originated
// writes must use WriteAt. WriteForce bypasses the guest TLB accounting:
// it fills no entries (the pages may grant the guest no access at all) and
// only refreshes read entries whose frames it CoW-replaces.
func (as *AddressSpace) WriteForce(p []byte, addr uint64) error {
	if err := as.checkMapped(addr, len(p)); err != nil {
		return err
	}
	return as.writePages(p, addr, true)
}

// writePages is the shared slow-path store loop: the access has been
// validated, and each page needs a privately-owned frame. The enclosing
// leaf node is resolved once per 512-page span (run-length), so large
// writes pay one radix walk per span plus one refcount check per page
// instead of a full walk per page.
// cheap: the store slow path — CoW materialization allocates by design.
func (as *AddressSpace) writePages(p []byte, addr uint64, force bool) error {
	if as.sealed {
		return sealedWriteFault(addr)
	}
	epoch := as.pt.epoch
	var leaf *tableNode
	leafBase := ^uint64(0)
	for len(p) > 0 {
		off := int(addr & PageMask)
		n := min(PageSize-off, len(p))
		vpn := addr >> PageShift
		var f *Frame
		if force {
			// Peek without charging guest hit accounting; the epoch must
			// match just like a guest probe, or the frame may be shared.
			if e := as.tlb.e; e != nil && e.wtag[vpn&tlbMask] == vpn+1 && e.wepoch[vpn&tlbMask] == epoch {
				f = e.wframe[vpn&tlbMask]
			}
		} else if hit, ok := as.tlb.writeFrame(vpn, epoch); ok {
			f = hit
		}
		if f == nil {
			if base := vpn >> levelBits; leaf == nil || base != leafBase {
				leaf = as.pt.ensureLeaf(addr, &as.stats)
				leafBase = base
			}
			var err error
			f, err = as.pt.ensureFrame(leaf, int(vpn&levelMask), &as.stats)
			if err != nil {
				return err
			}
			if force {
				as.tlb.refreshRead(vpn, f)
			} else {
				as.tlb.fillWrite(vpn, f, epoch)
			}
		}
		copy(f.Data[off:off+n], p[:n])
		p = p[n:]
		addr += uint64(n)
	}
	return nil
}

// ReadU64 loads a little-endian 64-bit word. Aligned loads take the
// single-page fast path: a TLB hit is one mask+compare, no VMA check and
// no radix walk.
// hot_path: the aligned-load fast path.
func (as *AddressSpace) ReadU64(addr uint64) (uint64, error) {
	if addr&7 == 0 {
		vpn := addr >> PageShift
		if as.sealed {
			f, ok := as.sealedProbe(vpn)
			if !ok {
				if err := as.check(addr, 8, AccessRead); err != nil {
					return 0, err
				}
				f = lookup(as.pt.root, addr)
				as.sealedFill(vpn, f)
			}
			if f == nil {
				return 0, nil
			}
			off := addr & PageMask
			return binary.LittleEndian.Uint64(f.Data[off : off+8]), nil
		}
		if f, ok := as.tlb.readFrame(vpn); ok {
			if f == nil {
				return 0, nil
			}
			off := addr & PageMask
			return binary.LittleEndian.Uint64(f.Data[off : off+8]), nil
		}
		if err := as.check(addr, 8, AccessRead); err != nil {
			return 0, err
		}
		f := lookup(as.pt.root, addr)
		as.tlb.fillRead(vpn, f)
		if f == nil {
			return 0, nil
		}
		off := addr & PageMask
		return binary.LittleEndian.Uint64(f.Data[off : off+8]), nil
	}
	var b [8]byte
	if err := as.ReadAt(b[:], addr); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 stores a little-endian 64-bit word. Aligned stores to a page
// this space privately owns hit the write TLB and bypass the page table
// entirely.
// hot_path: the aligned-store fast path.
func (as *AddressSpace) WriteU64(addr, val uint64) error {
	if addr&7 == 0 {
		vpn := addr >> PageShift
		off := addr & PageMask
		if f, ok := as.tlb.writeFrame(vpn, as.pt.epoch); ok {
			binary.LittleEndian.PutUint64(f.Data[off:off+8], val)
			return nil
		}
		if err := as.check(addr, 8, AccessWrite); err != nil {
			return err
		}
		if as.sealed {
			return sealedWriteFault(addr)
		}
		f, err := as.pt.ensureWritable(addr, &as.stats)
		if err != nil {
			return err
		}
		as.tlb.fillWrite(vpn, f, as.pt.epoch)
		binary.LittleEndian.PutUint64(f.Data[off:off+8], val)
		return nil
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], val)
	return as.WriteAt(b[:], addr)
}

// ReadU8 loads one byte.
func (as *AddressSpace) ReadU8(addr uint64) (byte, error) {
	var b [1]byte
	if err := as.ReadAt(b[:], addr); err != nil {
		return 0, err
	}
	return b[0], nil
}

// WriteU8 stores one byte.
func (as *AddressSpace) WriteU8(addr uint64, v byte) error {
	b := [1]byte{v}
	return as.WriteAt(b[:], addr)
}

// ReadU32 loads a little-endian 32-bit word.
func (as *AddressSpace) ReadU32(addr uint64) (uint32, error) {
	var b [4]byte
	if err := as.ReadAt(b[:], addr); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteU32 stores a little-endian 32-bit word.
func (as *AddressSpace) WriteU32(addr uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return as.WriteAt(b[:], addr)
}

// ReadCString reads a NUL-terminated string of at most maxLen bytes.
func (as *AddressSpace) ReadCString(addr uint64, maxLen int) (string, error) {
	buf := make([]byte, 0, 64)
	for i := 0; i < maxLen; i++ {
		c, err := as.ReadU8(addr + uint64(i))
		if err != nil {
			return "", err
		}
		if c == 0 {
			return string(buf), nil
		}
		buf = append(buf, c)
	}
	return "", fmt.Errorf("mem: unterminated string at %#x", addr)
}

// Fork returns an O(1) logical copy of the address space. Parent and child
// share every page copy-on-write; the VMA list and break are duplicated.
// This is the primitive lightweight snapshots build on.
//
// Fork is an epoch boundary: the parent's privately-owned pages become
// shared the instant the fork exists, so the parent starts a new snapshot
// epoch. Its write-TLB entries — which cache private ownership under the
// epoch they were filled in — go stale in O(1) without being touched, and
// the parent's next write to each page re-resolves through the fault path
// (copy-on-first-write-per-epoch). AdvanceEpoch itself no-ops on sealed
// snapshot spaces, which are forked concurrently by restoring workers and
// must not be mutated. The child starts with an empty TLB and a fresh
// epoch of its own.
//
// epoch_boundary: the parent's privately-owned pages become shared.
func (as *AddressSpace) Fork() *AddressSpace {
	as.AdvanceEpoch()
	if as.pt.root != nil {
		retainNode(as.pt.root)
	}
	vmas := make([]VMA, len(as.vmas))
	copy(vmas, as.vmas)
	return &AddressSpace{
		pt:   pageTable{root: as.pt.root, alloc: as.pt.alloc, epoch: nextEpoch()},
		vmas: vmas,
		brk:  as.brk,
	}
}

// Release drops this space's reference to its page table, freeing frames
// whose last reference this was. The space must not be used afterwards.
//
// sharing_boundary: cached frames are released out from under the TLB.
func (as *AddressSpace) Release() {
	if as.pt.root != nil {
		releaseNode(as.pt.alloc, as.pt.root)
		as.pt.root = nil
	}
	as.vmas = nil
	as.tlb.flush()     // cached frames were just released
	as.stlb.Store(nil) // likewise the sealed read cache
}

// Footprint walks the page table and reports residency and sharing.
func (as *AddressSpace) Footprint() Footprint { return footprint(as.pt.root) }

// ResidentPages returns the number of frames reachable from this space.
func (as *AddressSpace) ResidentPages() int {
	fp := as.Footprint()
	return fp.PrivatePages + fp.SharedPages
}

// ForEachPage calls fn for every resident page in ascending address order;
// fn must not retain f. Used by the full-copy checkpoint baseline.
func (as *AddressSpace) ForEachPage(fn func(addr uint64, f *Frame)) {
	forEachPage(as.pt.root, func(vpn uint64, f *Frame) { fn(vpn<<PageShift, f) })
}

// FrameAt returns the physical frame backing addr for reading, or nil when
// the page is demand-zero. Callers must not write through the frame; it may
// be shared with snapshots. Protection is not checked here — callers are
// trusted internal paths (instruction-fetch TLB, checkpoint walkers) that
// validated the access already.
func (as *AddressSpace) FrameAt(addr uint64) *Frame { return lookup(as.pt.root, addr) }

// TouchWritable forces the page containing addr to be privately owned,
// taking the CoW fault eagerly. Benchmarks use it to charge fault costs at
// controlled points.
// hot_path: a write-TLB probe; the fault arm is cheap.
func (as *AddressSpace) TouchWritable(addr uint64) error {
	vpn := addr >> PageShift
	if _, ok := as.tlb.writeFrame(vpn, as.pt.epoch); ok {
		return nil // already privately owned this epoch
	}
	if err := as.check(addr, 1, AccessWrite); err != nil {
		return err
	}
	if as.sealed {
		return sealedWriteFault(addr)
	}
	f, err := as.pt.ensureWritable(addr, &as.stats)
	if err != nil {
		return err
	}
	as.tlb.fillWrite(vpn, f, as.pt.epoch)
	return nil
}
