package mem

import (
	"sync"
	"sync/atomic"
)

// Frame is a refcounted 4 KiB physical frame. Frames referenced by more
// than one page table are immutable; writers copy them first (CoW).
type Frame struct {
	ref atomic.Int32
	// priv is the snapshot-epoch token of the owning space at the moment
	// the frame was last privatized or written through the slow path (see
	// AddressSpace.AdvanceEpoch). It is written only while the frame is
	// exclusively owned — sharing a frame requires a Fork, which starts a
	// new epoch — so plain (non-atomic) access is race-free: any goroutine
	// that can read a stale value can only be looking at a frozen frame
	// whose stamp no longer changes.
	priv uint64
	Data [PageSize]byte
}

// Epoch returns the snapshot-epoch token the frame was last privatized or
// slow-path-written in. Incremental checkpoints compare it against the
// epoch of their previous capture to detect dirty pages without walking a
// baseline copy.
func (f *Frame) Epoch() uint64 { return f.priv }

// FrameAllocator hands out physical frames against a configurable limit and
// recycles freed frames through a pool. It is safe for concurrent use; all
// bookkeeping is atomic so parallel extension evaluation (Fig. 2 of the
// paper) never serializes on the allocator.
type FrameAllocator struct {
	limit int64 // max live frames; 0 means unlimited
	live  atomic.Int64
	total atomic.Int64 // cumulative allocations
	pool  sync.Pool
}

// NewFrameAllocator returns an allocator bounded to limit live frames.
// limit == 0 means unbounded.
func NewFrameAllocator(limit int64) *FrameAllocator {
	fa := &FrameAllocator{limit: limit}
	fa.pool.New = func() any { return new(Frame) }
	return fa
}

// Alloc returns a zeroed frame with refcount 1, or a FaultOOM fault when
// the limit is exhausted.
func (fa *FrameAllocator) Alloc() (*Frame, error) {
	if fa.limit > 0 && fa.live.Load() >= fa.limit {
		return nil, &Fault{Kind: FaultOOM}
	}
	fa.live.Add(1)
	fa.total.Add(1)
	f := fa.pool.Get().(*Frame)
	f.Data = [PageSize]byte{}
	f.priv = 0 // pooled frames carry a dead epoch stamp
	f.ref.Store(1)
	return f, nil
}

// clone returns a private copy of src with refcount 1.
func (fa *FrameAllocator) clone(src *Frame) (*Frame, error) {
	f, err := fa.Alloc()
	if err != nil {
		return nil, err
	}
	f.Data = src.Data
	return f, nil
}

// retain adds a reference to f.
func retain(f *Frame) { f.ref.Add(1) }

// release drops a reference to f, returning it to the pool at zero.
func (fa *FrameAllocator) release(f *Frame) {
	if f.ref.Add(-1) == 0 {
		fa.live.Add(-1)
		fa.pool.Put(f)
	}
}

// Live returns the number of live frames.
func (fa *FrameAllocator) Live() int64 { return fa.live.Load() }

// Total returns the cumulative number of frame allocations.
func (fa *FrameAllocator) Total() int64 { return fa.total.Load() }

// Limit returns the configured live-frame limit (0 = unbounded).
func (fa *FrameAllocator) Limit() int64 { return fa.limit }
