package mem

import "testing"

// The hot_path: annotations on the TLB-hit read/write paths promise
// zero heap allocation per op; reprolint's hotpath analyzer enforces it
// statically and escapegate checks the compiler's verdicts, but the
// runtime allocation counter is the ground truth both approximate.

func TestReadWriteU64HitPathZeroAlloc(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 16*PageSize, PermRW, "data")
	// Warm: fault the page in and seed the TLB so the measured loop is
	// pure hit path.
	if err := as.WriteU64(0x10008, 1); err != nil {
		t.Fatalf("warm WriteU64: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := as.WriteU64(0x10008, 42); err != nil {
			t.Fatalf("WriteU64: %v", err)
		}
		v, err := as.ReadU64(0x10008)
		if err != nil || v != 42 {
			t.Fatalf("ReadU64 = %d, %v", v, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("TLB-hit ReadU64/WriteU64 allocated %.1f times per op; the hot path must not touch the heap", allocs)
	}
}

func TestTouchWritableHitPathZeroAlloc(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 4*PageSize, PermRW, "data")
	if err := as.TouchWritable(0x10010); err != nil {
		t.Fatalf("warm TouchWritable: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := as.TouchWritable(0x10010); err != nil {
			t.Fatalf("TouchWritable: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("TLB-hit TouchWritable allocated %.1f times per op", allocs)
	}
}
