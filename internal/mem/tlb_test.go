package mem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestTLBHitMissAccounting checks the counter contract: every page-sized
// unit of every guest read/write access increments exactly one of
// TLBHits/TLBMisses, so the two sum to the number of page accesses.
func TestTLBHitMissAccounting(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 8*PageSize, PermRW, "data")

	const n = 100
	for i := 0; i < n; i++ {
		if err := as.WriteU64(0x10000+uint64(i%8)*8, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := as.ReadU64(0x10000 + uint64(i%8)*8); err != nil {
			t.Fatal(err)
		}
	}
	st := as.Stats()
	if got := st.TLBHits + st.TLBMisses; got != 2*n {
		t.Errorf("hits+misses = %d, want %d (one per page access)", got, 2*n)
	}
	// Same-page loops: one write miss fills the entry, one read miss fills
	// the read side; everything else hits.
	if st.TLBMisses != 2 {
		t.Errorf("misses = %d, want 2", st.TLBMisses)
	}

	// Multi-page accesses count one unit per page.
	as.ResetStats()
	buf := make([]byte, 3*PageSize)
	if err := as.WriteAt(buf, 0x10000); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteAt(buf, 0x10000); err != nil {
		t.Fatal(err)
	}
	if err := as.ReadAt(buf, 0x10000); err != nil {
		t.Fatal(err)
	}
	st = as.Stats()
	if got := st.TLBHits + st.TLBMisses; got != 9 {
		t.Errorf("hits+misses after 3x3-page accesses = %d, want 9", got)
	}
	// Page 0's entries are warm from the loops above (1 write hit + 1 read
	// hit); the second write hits on all 3 pages.
	if st.TLBHits != 5 {
		t.Errorf("hits = %d, want 5", st.TLBHits)
	}
}

// TestTLBWriteAfterForkInvalidation is the central CoW invariant: a write
// entry caches private ownership, and Fork ends that ownership. A parent
// whose write TLB is hot must still take a CoW fault on its first
// post-fork write, leaving the child's view intact.
func TestTLBWriteAfterForkInvalidation(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 4*PageSize, PermRW, "data")
	// Two writes: the second is a TLB hit, so the entry is live.
	if err := as.WriteU64(0x10000, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteU64(0x10008, 2); err != nil {
		t.Fatal(err)
	}
	child := as.Fork()
	defer child.Release()

	// Parent writes through what was a hot TLB entry.
	if err := as.WriteU64(0x10000, 111); err != nil {
		t.Fatal(err)
	}
	if v, _ := child.ReadU64(0x10000); v != 1 {
		t.Errorf("child sees parent's post-fork write: %d, want 1", v)
	}
	if v, _ := as.ReadU64(0x10000); v != 111 {
		t.Errorf("parent lost its own write: %d, want 111", v)
	}
	if c := as.Stats().CowCopies; c != 1 {
		t.Errorf("parent CoW copies = %d, want 1 (post-fork write must copy)", c)
	}

	// And the mirror image: the child's first write diverges privately.
	if err := child.WriteU64(0x10008, 222); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadU64(0x10008); v != 2 {
		t.Errorf("parent sees child write: %d, want 2", v)
	}
	as.Release()
	if live := child.Alloc().Live(); live == 0 {
		t.Error("child released early?")
	}
}

// TestTLBUnmapThenRemapReadsZero: unmapping drops frames; a later mapping
// of the same range must read demand-zero, not a stale cached frame.
func TestTLBUnmapThenRemapReadsZero(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 2*PageSize, PermRW, "data")
	if err := as.WriteU64(0x10000, 42); err != nil {
		t.Fatal(err)
	}
	// Warm both caches.
	if v, _ := as.ReadU64(0x10000); v != 42 {
		t.Fatal("setup read failed")
	}
	if err := as.Unmap(0x10000, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := as.ReadU64(0x10000); err == nil {
		t.Fatal("read of unmapped page succeeded (stale TLB entry)")
	}
	if err := as.WriteU64(0x10000, 7); err == nil {
		t.Fatal("write to unmapped page succeeded (stale TLB entry)")
	}
	mustMap(t, as, 0x10000, 2*PageSize, PermRW, "data2")
	if v, err := as.ReadU64(0x10000); err != nil || v != 0 {
		t.Errorf("remapped page reads %d, %v; want demand-zero", v, err)
	}
}

// TestTLBProtectRevokesCachedWrite: a hot write entry encodes PermWrite;
// mprotect to read-only must revoke it, or stores bypass protection.
func TestTLBProtectRevokesCachedWrite(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 2*PageSize, PermRW, "data")
	if err := as.WriteU64(0x10000, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteU64(0x10000, 2); err != nil { // TLB hit
		t.Fatal(err)
	}
	if err := as.Protect(0x10000, 2*PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	err := as.WriteU64(0x10000, 3)
	if f, ok := IsFault(err); !ok || f.Kind != FaultProtection {
		t.Fatalf("write after Protect = %v, want protection fault", err)
	}
	if v, _ := as.ReadU64(0x10000); v != 2 {
		t.Errorf("protected page = %d, want 2", v)
	}
	// Granting write again re-fills on the next store.
	if err := as.Protect(0x10000, 2*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteU64(0x10000, 4); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadU64(0x10000); v != 4 {
		t.Errorf("re-enabled page = %d, want 4", v)
	}
}

// TestTLBBrkShrinkInvalidates: shrinking the heap drops tail frames; the
// TLB must not serve them after the heap grows back.
func TestTLBBrkShrinkInvalidates(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x100000, PageSize, PermRW, "heap")
	as.InitBrk(0x100000)
	if _, err := as.Brk(0x100000 + 4*PageSize); err != nil {
		t.Fatal(err)
	}
	hi := uint64(0x100000 + 3*PageSize)
	if err := as.WriteU64(hi, 9); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadU64(hi); v != 9 { // warm the read entry
		t.Fatal("setup read failed")
	}
	if _, err := as.Brk(0x100000 + PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Brk(0x100000 + 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if v, err := as.ReadU64(hi); err != nil || v != 0 {
		t.Errorf("regrown heap page = %d, %v; want demand-zero", v, err)
	}
}

// TestTLBReadEntryRefreshedByCoW: a read entry caches a frame that a CoW
// fault then replaces; subsequent reads must see the private copy.
func TestTLBReadEntryRefreshedByCoW(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, PageSize, PermRW, "data")
	if err := as.WriteU64(0x10000, 5); err != nil {
		t.Fatal(err)
	}
	child := as.Fork()
	defer child.Release()
	// Warm the parent's read entry on the now-shared frame.
	if v, _ := as.ReadU64(0x10000); v != 5 {
		t.Fatal("setup read failed")
	}
	// CoW fault replaces the frame under the read entry.
	if err := as.WriteU64(0x10000, 6); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadU64(0x10000); v != 6 {
		t.Errorf("read after CoW = %d, want 6 (stale read entry)", v)
	}
	if v, _ := child.ReadU64(0x10000); v != 5 {
		t.Errorf("child = %d, want 5", v)
	}
}

// TestTLBDemandZeroReadCached: demand-zero pages are cacheable (nil
// frame); materializing the page must upgrade the cached entry.
func TestTLBDemandZeroReadCached(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, PageSize, PermRW, "data")
	for i := 0; i < 3; i++ {
		if v, err := as.ReadU64(0x10000); err != nil || v != 0 {
			t.Fatalf("demand-zero read %d = %d, %v", i, v, err)
		}
	}
	if live := as.Alloc().Live(); live != 0 {
		t.Fatalf("demand-zero reads allocated %d frames", live)
	}
	st := as.Stats()
	if st.TLBHits != 2 || st.TLBMisses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", st.TLBHits, st.TLBMisses)
	}
	if err := as.WriteU64(0x10000, 77); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadU64(0x10000); v != 77 {
		t.Errorf("read after materialization = %d, want 77 (stale nil entry)", v)
	}
}

// TestTLBDisabledMatchesEnabled: with the TLB off the space behaves
// identically and reports zero TLB activity (the benchmark baseline).
func TestTLBDisabledMatchesEnabled(t *testing.T) {
	as := newAS(t)
	as.SetTLBEnabled(false)
	mustMap(t, as, 0x10000, 4*PageSize, PermRW, "data")
	for i := 0; i < 10; i++ {
		if err := as.WriteU64(0x10000, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := as.ReadU64(0x10000); v != 9 {
		t.Errorf("read = %d, want 9", v)
	}
	st := as.Stats()
	if st.TLBHits != 0 || st.TLBMisses != 0 {
		t.Errorf("disabled TLB counted %d/%d", st.TLBHits, st.TLBMisses)
	}
	as.SetTLBEnabled(true)
	if err := as.WriteU64(0x10000, 10); err != nil {
		t.Fatal(err)
	}
	if st := as.Stats(); st.TLBHits+st.TLBMisses == 0 {
		t.Error("re-enabled TLB counted nothing")
	}
}

// TestWriteForceExecOnly is the loader regression: WriteForce must be able
// to populate exec-only and write-only segments — it requires the range to
// be mapped, nothing more.
func TestWriteForceExecOnly(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x400000, PageSize, PermExec, "text")
	code := []byte{0x90, 0x0f, 0x05}
	if err := as.WriteForce(code, 0x400000); err != nil {
		t.Fatalf("WriteForce to exec-only segment: %v", err)
	}
	got := make([]byte, len(code))
	if err := as.FetchAt(got, 0x400000); err != nil {
		t.Fatalf("FetchAt: %v", err)
	}
	if !bytes.Equal(got, code) {
		t.Errorf("fetched %x, want %x", got, code)
	}
	// Guest-level access still honours the protection.
	if err := as.ReadAt(got, 0x400000); err == nil {
		t.Error("ReadAt of exec-only segment succeeded")
	}
	if err := as.WriteAt(code, 0x400000); err == nil {
		t.Error("WriteAt to exec-only segment succeeded")
	}

	// Write-only works too, and reads keep faulting.
	mustMap(t, as, 0x500000, PageSize, PermWrite, "wo")
	if err := as.WriteForce([]byte{1, 2, 3}, 0x500000); err != nil {
		t.Fatalf("WriteForce to write-only segment: %v", err)
	}
	if err := as.WriteAt([]byte{4}, 0x500000); err != nil {
		t.Errorf("WriteAt to write-only segment: %v", err)
	}
	if _, err := as.ReadU8(0x500000); err == nil {
		t.Error("read of write-only segment succeeded")
	}

	// Unmapped ranges still fault.
	err := as.WriteForce([]byte{1}, 0x600000)
	if f, ok := IsFault(err); !ok || f.Kind != FaultNotMapped {
		t.Errorf("WriteForce to unmapped range = %v, want not-mapped fault", err)
	}
}

// TestUnmapProtectRangeValidation: like Map, Unmap and Protect must reject
// ranges beyond MaxVA or wrapping the address space instead of silently
// no-opping.
func TestUnmapProtectRangeValidation(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 2*PageSize, PermRW, "data")

	cases := []struct {
		name          string
		start, length uint64
	}{
		{"beyond-maxva", MaxVA - PageSize, 2 * PageSize},
		{"wraparound", ^uint64(0) - PageSize + 1, 2 * PageSize},
	}
	for _, c := range cases {
		err := as.Unmap(c.start, c.length)
		if f, ok := IsFault(err); !ok || f.Kind != FaultBadAddress {
			t.Errorf("Unmap %s = %v, want bad-address fault", c.name, err)
		}
		err = as.Protect(c.start, c.length, PermRead)
		if f, ok := IsFault(err); !ok || f.Kind != FaultBadAddress {
			t.Errorf("Protect %s = %v, want bad-address fault", c.name, err)
		}
	}
	// In-range operations still work.
	if err := as.Protect(0x10000, PageSize, PermRead); err != nil {
		t.Errorf("valid Protect: %v", err)
	}
	if err := as.Unmap(0x10000, 2*PageSize); err != nil {
		t.Errorf("valid Unmap: %v", err)
	}
}

// TestBrkBeyondMaxVA: Brk must reject a break past MaxVA instead of
// silently clamping the heap and reporting a break it never granted.
func TestBrkBeyondMaxVA(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, MaxVA-2*PageSize, PageSize, PermRW, "heap")
	as.InitBrk(MaxVA - 2*PageSize)
	_, err := as.Brk(^uint64(0) - PageSize)
	if f, ok := IsFault(err); !ok || f.Kind != FaultBadAddress {
		t.Fatalf("Brk beyond MaxVA = %v, want bad-address fault", err)
	}
	if b, _ := as.Brk(0); b != MaxVA-2*PageSize {
		t.Errorf("break moved to %#x after failed Brk", b)
	}
	// Growing exactly to MaxVA is legal.
	if _, err := as.Brk(MaxVA); err != nil {
		t.Errorf("Brk(MaxVA) = %v", err)
	}
	if err := as.WriteU64(MaxVA-PageSize, 1); err != nil {
		t.Errorf("write to last granted page: %v", err)
	}
}

// TestTLBConcurrentSealedRestore mirrors the engine's sharing pattern
// under -race: a sealed capture is forked and read by many goroutines at
// once while each fork writes privately. The sealed space must serve every
// read correctly through its shared read cache and every fork must diverge
// correctly.
func TestTLBConcurrentSealedRestore(t *testing.T) {
	alloc := NewFrameAllocator(0)
	parent := NewAddressSpace(alloc)
	if err := parent.Map(0, 64*PageSize, PermRW, "data"); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		if err := parent.WriteU64(i*PageSize, i); err != nil {
			t.Fatal(err)
		}
	}
	frozen := parent.Fork() // the capture
	frozen.Seal()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := frozen.Fork() // the restore
			defer child.Release()
			for i := uint64(0); i < 64; i++ {
				if err := child.WriteU64(i*PageSize+8, uint64(w)); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				// Re-read through the TLB, and read the frozen view
				// directly (restorers and inspectors overlap in the
				// engine).
				if v, err := child.ReadU64(i * PageSize); err != nil || v != i {
					errs <- fmt.Errorf("worker %d: shared page %d = %d, %v", w, i, v, err)
					return
				}
				if v, err := frozen.ReadU64(i * PageSize); err != nil || v != i {
					errs <- fmt.Errorf("worker %d: frozen page %d = %d, %v", w, i, v, err)
					return
				}
				if v, err := child.ReadU64(i*PageSize + 8); err != nil || v != uint64(w) {
					errs <- fmt.Errorf("worker %d: private write lost: %d, %v", w, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The sealed read cache serves the frozen reads: every frozen.ReadU64
	// charges exactly one of hit/miss, so the two sum to the read count.
	if st := frozen.Stats(); st.TLBHits+st.TLBMisses != workers*64 {
		t.Errorf("sealed hits+misses = %d/%d, want sum %d", st.TLBHits, st.TLBMisses, workers*64)
	}
	// A sealed view is read-only by contract: writes fault like a page
	// with no write permission.
	err := frozen.WriteU64(0, 99)
	if f, ok := IsFault(err); !ok || f.Kind != FaultProtection {
		t.Errorf("write to sealed space = %v, want protection fault", err)
	}
	if err := frozen.WriteAt([]byte{1}, 0); err == nil {
		t.Error("WriteAt to sealed space succeeded")
	}
	frozen.Release()
	parent.Release()
	if live := alloc.Live(); live != 0 {
		t.Errorf("leaked %d frames", live)
	}
}

// TestTLBWriteForceKeepsReadCoherent: WriteForce CoW-replaces frames on
// shared pages; a warm read entry must observe the replacement.
func TestTLBWriteForceKeepsReadCoherent(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, PageSize, PermRead, "rodata")
	if err := as.WriteForce([]byte{1}, 0x10000); err != nil {
		t.Fatal(err)
	}
	snap := as.Fork()
	defer snap.Release()
	// Warm the read entry on the shared frame.
	if v, _ := as.ReadU8(0x10000); v != 1 {
		t.Fatal("setup read failed")
	}
	// Kernel write CoW-replaces the frame.
	if err := as.WriteForce([]byte{2}, 0x10000); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadU8(0x10000); v != 2 {
		t.Errorf("read after WriteForce CoW = %d, want 2 (stale read entry)", v)
	}
	if v, _ := snap.ReadU8(0x10000); v != 1 {
		t.Errorf("snapshot = %d, want 1", v)
	}
}
