package mem

import (
	"testing"
)

// TestEpochStamping checks the write-side of the epoch protocol: every
// privatizing write stamps the frame with the space's current epoch, an
// AdvanceEpoch leaves old stamps behind (so "written since" is exactly
// `stamp >= boundary`), and rewriting a privately-owned page after a bump
// restamps it in place — the arm incremental checkpoints depend on.
func TestEpochStamping(t *testing.T) {
	as := newAS(t)
	defer as.Release()
	mustMap(t, as, 0x1000, 3*PageSize, PermRW, "data")

	if err := as.WriteU64(0x1000, 1); err != nil {
		t.Fatal(err)
	}
	e0 := as.Epoch()
	if got := as.FrameAt(0x1000).Epoch(); got != e0 {
		t.Fatalf("fresh write stamped epoch %d, space epoch %d", got, e0)
	}

	e1 := as.AdvanceEpoch()
	if e1 <= e0 {
		t.Fatalf("AdvanceEpoch went %d -> %d, want strictly increasing", e0, e1)
	}
	if got := as.FrameAt(0x1000).Epoch(); got != e0 {
		t.Fatalf("bump restamped an untouched frame: %d, want %d", got, e0)
	}
	if got := as.FrameAt(0x1000).Epoch(); got >= e1 {
		t.Fatalf("untouched frame reads as dirty in epoch %d", e1)
	}

	// Rewrite the privately-owned page: no CoW happens (refcount 1), so
	// the stamp must be updated in place.
	if err := as.WriteU64(0x1000, 2); err != nil {
		t.Fatal(err)
	}
	if got := as.FrameAt(0x1000).Epoch(); got != e1 {
		t.Fatalf("in-place rewrite stamped %d, want current epoch %d", got, e1)
	}
	// A page never written since the bump stays below the boundary.
	if err := as.WriteU64(0x2000, 3); err != nil {
		t.Fatal(err)
	}
	if got := as.FrameAt(0x2000).Epoch(); got != e1 {
		t.Fatalf("first-touch after bump stamped %d, want %d", got, e1)
	}
}

// TestEpochForkUniqueness checks the sharing-side: Fork advances the
// parent's epoch (its cached write entries go stale) and the child starts
// in a globally fresh epoch, so no space can mistake another lineage's
// stamps for its own.
func TestEpochForkUniqueness(t *testing.T) {
	as := newAS(t)
	defer as.Release()
	mustMap(t, as, 0x1000, PageSize, PermRW, "data")
	if err := as.WriteU64(0x1000, 1); err != nil {
		t.Fatal(err)
	}
	parentBefore := as.Epoch()
	child := as.Fork()
	defer child.Release()
	if as.Epoch() <= parentBefore {
		t.Fatalf("Fork left parent epoch at %d (was %d); stale write entries survive", as.Epoch(), parentBefore)
	}
	if child.Epoch() == as.Epoch() || child.Epoch() <= parentBefore {
		t.Fatalf("child epoch %d not fresh (parent %d -> %d)", child.Epoch(), parentBefore, as.Epoch())
	}
	// The shared frame's stamp predates both new epochs: neither side may
	// consider it privately written in its current epoch.
	if got := as.FrameAt(0x1000).Epoch(); got >= as.Epoch() || got >= child.Epoch() {
		t.Fatalf("shared frame stamp %d not below post-fork epochs %d/%d", got, as.Epoch(), child.Epoch())
	}
}

// TestAdvanceEpochSealed checks that a sealed space is epoch-frozen:
// AdvanceEpoch is a no-op returning the current epoch, so forking a
// sealed snapshot never mutates it (concurrent Restore safety).
func TestAdvanceEpochSealed(t *testing.T) {
	as := newAS(t)
	defer as.Release()
	mustMap(t, as, 0x1000, PageSize, PermRW, "data")
	if err := as.WriteU64(0x1000, 7); err != nil {
		t.Fatal(err)
	}
	as.Seal()
	if !as.Sealed() {
		t.Fatal("Seal did not seal")
	}
	e := as.Epoch()
	if got := as.AdvanceEpoch(); got != e || as.Epoch() != e {
		t.Fatalf("AdvanceEpoch on sealed space moved %d -> %d", e, as.Epoch())
	}
	child := as.Fork()
	defer child.Release()
	if as.Epoch() != e {
		t.Fatalf("Fork mutated sealed parent's epoch: %d -> %d", e, as.Epoch())
	}
}

// TestSealedReadTLBHitRate checks the mechanism behind the shared-state
// read penalty fix: repeated reads of a sealed space are served by the
// lock-free sealed TLB, not a radix walk per access. The hit rate is the
// deterministic guarantee behind BenchmarkReadU64Sealed's ~parity with
// private reads.
func TestSealedReadTLBHitRate(t *testing.T) {
	as := newAS(t)
	defer as.Release()
	const pages = 8
	mustMap(t, as, 0x1000, pages*PageSize, PermRW, "data")
	for i := uint64(0); i < pages; i++ {
		if err := as.WriteU64(0x1000+i*PageSize, i); err != nil {
			t.Fatal(err)
		}
	}
	as.Seal()
	as.ResetStats()
	const rounds = 128
	for r := 0; r < rounds; r++ {
		for i := uint64(0); i < pages; i++ {
			v, err := as.ReadU64(0x1000 + i*PageSize)
			if err != nil {
				t.Fatal(err)
			}
			if v != i {
				t.Fatalf("sealed read page %d = %d", i, v)
			}
		}
	}
	st := as.Stats()
	if st.TLBHits+st.TLBMisses != rounds*pages {
		t.Fatalf("sealed reads miscounted: hits %d + misses %d != %d accesses",
			st.TLBHits, st.TLBMisses, rounds*pages)
	}
	// One cold miss per page, everything after must hit.
	if st.TLBMisses > pages {
		t.Fatalf("sealed TLB missed %d times for %d pages; reads are walking the radix", st.TLBMisses, pages)
	}
}

// benchReadSpace maps and pre-touches a working set for the read
// benchmarks; sealed selects the frozen-view configuration.
func benchReadSpace(b *testing.B, pages int, sealed bool) *AddressSpace {
	b.Helper()
	as := NewAddressSpace(NewFrameAllocator(0))
	if err := as.Map(0x1000, uint64(pages)*PageSize, PermRW, "data"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		if err := as.WriteU64(0x1000+uint64(i)*PageSize, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	if sealed {
		as.Seal()
	}
	return as
}

// BenchmarkReadU64Private / BenchmarkReadU64Sealed are the regression
// pair for the frozen-space read penalty: before the sealed TLB, sealing
// disabled translation caching entirely and every read of a captured
// state paid a full radix walk. Sealed reads should now stay within ~2x
// of private reads (the gap is the atomic-pointer load plus the shared
// hit counters).
func BenchmarkReadU64Private(b *testing.B) { benchReadU64(b, false) }

func BenchmarkReadU64Sealed(b *testing.B) { benchReadU64(b, true) }

func benchReadU64(b *testing.B, sealed bool) {
	const pages = 16
	as := benchReadSpace(b, pages, sealed)
	defer as.Release()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, err := as.ReadU64(0x1000 + uint64(i%pages)*PageSize)
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}
