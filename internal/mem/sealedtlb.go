package mem

import "sync/atomic"

// sealedTLB is the read cache of a sealed address space. A sealed space is
// read by many goroutines at once (every State.Restore forks it, every
// inspector reads it), so unlike the single-owner tlb it must tolerate
// concurrent probes and fills without locks. Each slot holds one atomic
// pointer to an immutable {vpn, frame} pair: fills publish a fresh entry
// with a single Store, probes Load and compare — a torn tag/frame pair is
// impossible by construction, so lost races cost at most a redundant walk.
//
// Entries are never invalidated: a sealed space's page table is immutable
// (writes fault, the VMA list is settled), so a cached translation stays
// correct until Release, which drops the whole cache before the frames go
// back to the allocator.
type sealedTLB struct {
	hits   atomic.Int64
	misses atomic.Int64
	slots  [tlbSize]atomic.Pointer[sealedEntry]
}

// sealedEntry is an immutable vpn → frame binding (nil frame = demand-zero
// page, PermRead already verified at fill time).
type sealedEntry struct {
	vpn uint64
	f   *Frame
}

// sealedProbe looks vpn up in the sealed read cache.
// hot_path: the sealed-read fast path; two atomic loads and a compare.
func (as *AddressSpace) sealedProbe(vpn uint64) (*Frame, bool) {
	st := as.stlb.Load()
	if st == nil {
		return nil, false
	}
	e := st.slots[vpn&tlbMask].Load()
	if e == nil || e.vpn != vpn {
		return nil, false
	}
	st.hits.Add(1)
	return e.f, true
}

// sealedFill publishes vpn → f after a slow-path read resolution on a
// sealed space, charging one miss. The cache itself is allocated lazily on
// the first miss so sealed spaces that are never read pay nothing.
// cheap: miss-path publication; allocates one immutable entry per fill.
func (as *AddressSpace) sealedFill(vpn uint64, f *Frame) {
	st := as.stlb.Load()
	if st == nil {
		st = &sealedTLB{}
		if !as.stlb.CompareAndSwap(nil, st) {
			st = as.stlb.Load()
		}
	}
	st.misses.Add(1)
	st.slots[vpn&tlbMask].Store(&sealedEntry{vpn: vpn, f: f})
}

// readSealed is the read loop for sealed spaces: identical access checking
// and demand-zero semantics to read(), but translations are cached in the
// shared sealed cache instead of the single-owner TLB, keeping concurrent
// readers race-free while still amortizing the radix walk.
// hot_path: the sealed read loop; all callees are hot or cheap.
func (as *AddressSpace) readSealed(p []byte, addr uint64, access Access) error {
	n := len(p)
	// Fast path: single-page read already cached.
	if access == AccessRead {
		if off := int(addr & PageMask); off+n <= PageSize {
			if f, ok := as.sealedProbe(addr >> PageShift); ok {
				if f != nil {
					copy(p, f.Data[off:off+n])
				} else {
					clear(p)
				}
				return nil
			}
		}
	}
	if err := as.check(addr, n, access); err != nil {
		return err
	}
	for len(p) > 0 {
		off := int(addr & PageMask)
		k := min(PageSize-off, len(p))
		f := lookup(as.pt.root, addr)
		if access == AccessRead {
			as.sealedFill(addr>>PageShift, f)
		}
		if f != nil {
			copy(p[:k], f.Data[off:off+k])
		} else {
			clear(p[:k])
		}
		p = p[k:]
		addr += uint64(k)
	}
	return nil
}

// sealedWriteFault is the fault every write path raises on a sealed space:
// the view is shared read-only by contract, exactly like a page whose VMA
// grants no write permission.
// cheap: constructs the fault; writes to sealed views are off the hot path.
func sealedWriteFault(addr uint64) error {
	return &Fault{Kind: FaultProtection, Addr: addr, Access: AccessWrite}
}
