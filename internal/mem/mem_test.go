package mem

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newAS(t testing.TB) *AddressSpace {
	t.Helper()
	return NewAddressSpace(NewFrameAllocator(0))
}

func mustMap(t testing.TB, as *AddressSpace, start, length uint64, perm Perm, name string) {
	t.Helper()
	if err := as.Map(start, length, perm, name); err != nil {
		t.Fatalf("Map(%#x,+%#x): %v", start, length, err)
	}
}

func TestPageHelpers(t *testing.T) {
	if PageFloor(0x1fff) != 0x1000 {
		t.Errorf("PageFloor(0x1fff) = %#x", PageFloor(0x1fff))
	}
	if PageCeil(0x1001) != 0x2000 {
		t.Errorf("PageCeil(0x1001) = %#x", PageCeil(0x1001))
	}
	if PageCeil(0x1000) != 0x1000 {
		t.Errorf("PageCeil(0x1000) = %#x", PageCeil(0x1000))
	}
	if PageCeil(MaxVA-1) != MaxVA {
		t.Errorf("PageCeil(MaxVA-1) = %#x", PageCeil(MaxVA-1))
	}
	if PageNumber(0x3abc) != 3 {
		t.Errorf("PageNumber(0x3abc) = %d", PageNumber(0x3abc))
	}
}

func TestPermString(t *testing.T) {
	cases := map[Perm]string{0: "---", PermRead: "r--", PermRW: "rw-", PermRWX: "rwx", PermRX: "r-x"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Perm(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 16*PageSize, PermRW, "data")
	msg := []byte("hello, snapshots")
	if err := as.WriteAt(msg, 0x10004); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(msg))
	if err := as.ReadAt(got, 0x10004); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("read back %q, want %q", got, msg)
	}
}

func TestDemandZero(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 4*PageSize, PermRW, "data")
	got := make([]byte, 100)
	for i := range got {
		got[i] = 0xff
	}
	if err := as.ReadAt(got, 0x10200); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0 (demand zero)", i, b)
		}
	}
	if as.Alloc().Live() != 0 {
		t.Errorf("demand-zero read allocated %d frames", as.Alloc().Live())
	}
}

func TestPageCrossingAccess(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 4*PageSize, PermRW, "data")
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := as.WriteAt(data, 0x10000+PageSize/2); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(data))
	if err := as.ReadAt(got, 0x10000+PageSize/2); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("page-crossing write did not round-trip")
	}
}

func TestWordAccessors(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 4*PageSize, PermRW, "data")
	if err := as.WriteU64(0x10008, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := as.ReadU64(0x10008)
	if err != nil || v != 0xdeadbeefcafef00d {
		t.Fatalf("ReadU64 = %#x, %v", v, err)
	}
	// Unaligned word access crosses the slow path.
	if err := as.WriteU64(0x10801, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err = as.ReadU64(0x10801)
	if err != nil || v != 0x1122334455667788 {
		t.Fatalf("unaligned ReadU64 = %#x, %v", v, err)
	}
	if err := as.WriteU32(0x10100, 0xa5a5a5a5); err != nil {
		t.Fatal(err)
	}
	v32, err := as.ReadU32(0x10100)
	if err != nil || v32 != 0xa5a5a5a5 {
		t.Fatalf("ReadU32 = %#x, %v", v32, err)
	}
	if err := as.WriteU8(0x10050, 0x7f); err != nil {
		t.Fatal(err)
	}
	v8, err := as.ReadU8(0x10050)
	if err != nil || v8 != 0x7f {
		t.Fatalf("ReadU8 = %#x, %v", v8, err)
	}
	// ReadU64 of a never-written aligned page returns zero without allocating.
	v, err = as.ReadU64(0x12000)
	if err != nil || v != 0 {
		t.Fatalf("ReadU64(untouched) = %#x, %v", v, err)
	}
}

func TestFaultNotMapped(t *testing.T) {
	as := newAS(t)
	err := as.WriteU8(0x5000, 1)
	f, ok := IsFault(err)
	if !ok || f.Kind != FaultNotMapped {
		t.Fatalf("want not-mapped fault, got %v", err)
	}
	if f.Access != AccessWrite {
		t.Errorf("fault access = %v, want write", f.Access)
	}
}

func TestFaultProtection(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, PageSize, PermRead, "ro")
	err := as.WriteU8(0x10000, 1)
	if f, ok := IsFault(err); !ok || f.Kind != FaultProtection {
		t.Fatalf("want protection fault, got %v", err)
	}
	// Reading is fine.
	if _, err := as.ReadU8(0x10000); err != nil {
		t.Fatalf("read of r-- region: %v", err)
	}
	// Exec of non-exec region faults.
	b := make([]byte, 4)
	err = as.FetchAt(b, 0x10000)
	if f, ok := IsFault(err); !ok || f.Kind != FaultProtection || f.Access != AccessExec {
		t.Fatalf("want exec protection fault, got %v", err)
	}
}

func TestFaultBadAddress(t *testing.T) {
	as := newAS(t)
	_, err := as.ReadU8(MaxVA + 12)
	if f, ok := IsFault(err); !ok || f.Kind != FaultBadAddress {
		t.Fatalf("want bad-address fault, got %v", err)
	}
	// Wraparound range.
	buf := make([]byte, 16)
	err = as.ReadAt(buf, ^uint64(0)-4)
	if f, ok := IsFault(err); !ok || f.Kind != FaultBadAddress {
		t.Fatalf("want bad-address fault on wrap, got %v", err)
	}
}

func TestMapValidation(t *testing.T) {
	as := newAS(t)
	if err := as.Map(0x10001, PageSize, PermRW, "x"); err == nil {
		t.Error("unaligned Map succeeded")
	}
	if err := as.Map(0x10000, 0, PermRW, "x"); err == nil {
		t.Error("empty Map succeeded")
	}
	mustMap(t, as, 0x10000, 4*PageSize, PermRW, "a")
	if err := as.Map(0x12000, 4*PageSize, PermRW, "b"); err == nil {
		t.Error("overlapping Map succeeded")
	}
	if err := as.Map(MaxVA-PageSize, 2*PageSize, PermRW, "hi"); err == nil {
		t.Error("out-of-range Map succeeded")
	}
}

func TestUnmapSplitsAndDropsPages(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 8*PageSize, PermRW, "a")
	for i := uint64(0); i < 8; i++ {
		if err := as.WriteU8(0x10000+i*PageSize, byte(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := as.Alloc().Live(); got != 8 {
		t.Fatalf("live frames = %d, want 8", got)
	}
	// Punch a hole in the middle.
	if err := as.Unmap(0x12000, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if got := as.Alloc().Live(); got != 6 {
		t.Errorf("live frames after unmap = %d, want 6", got)
	}
	if _, err := as.ReadU8(0x12000); err != nil {
		// expected: hole is unmapped
	} else {
		t.Error("read of unmapped hole succeeded")
	}
	// Neighbours still intact.
	if v, err := as.ReadU8(0x11000); err != nil || v != 2 {
		t.Errorf("left neighbour = %d, %v", v, err)
	}
	if v, err := as.ReadU8(0x14000); err != nil || v != 5 {
		t.Errorf("right neighbour = %d, %v", v, err)
	}
	if n := len(as.VMAs()); n != 2 {
		t.Errorf("VMA count = %d, want 2 (split)", n)
	}
}

func TestProtectSplits(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 8*PageSize, PermRW, "a")
	if err := as.Protect(0x12000, 2*PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteU8(0x12000, 1); err == nil {
		t.Error("write to protected subrange succeeded")
	}
	if err := as.WriteU8(0x11000, 1); err != nil {
		t.Errorf("write left of protected range: %v", err)
	}
	if err := as.WriteU8(0x14000, 1); err != nil {
		t.Errorf("write right of protected range: %v", err)
	}
	if err := as.Protect(0x40000, PageSize, PermRead); err == nil {
		t.Error("Protect of unmapped range succeeded")
	}
}

func TestBrk(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x100000, PageSize, PermRW, "heap")
	as.InitBrk(0x100000)
	// Query.
	b, err := as.Brk(0)
	if err != nil || b != 0x100000 {
		t.Fatalf("Brk(0) = %#x, %v", b, err)
	}
	// Grow.
	b, err = as.Brk(0x100000 + 5*PageSize + 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.WriteU8(0x100000+5*PageSize, 9); err != nil {
		t.Errorf("write to grown heap: %v", err)
	}
	// Shrink back.
	if _, err = as.Brk(0x100000 + PageSize); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteU8(0x100000+4*PageSize, 9); err == nil {
		t.Error("write beyond shrunk heap succeeded")
	}
	// Below base.
	if _, err := as.Brk(0x50000); err == nil {
		t.Error("Brk below base succeeded")
	}
	_ = b
}

func TestBrkCollision(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x100000, PageSize, PermRW, "heap")
	as.InitBrk(0x100000)
	mustMap(t, as, 0x102000, PageSize, PermRW, "wall")
	if _, err := as.Brk(0x104000); err == nil {
		t.Error("Brk through a neighbouring region succeeded")
	}
}

func TestForkIsolation(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 8*PageSize, PermRW, "data")
	if err := as.WriteU64(0x10000, 111); err != nil {
		t.Fatal(err)
	}
	child := as.Fork()
	defer child.Release()

	// Child sees parent data.
	if v, _ := child.ReadU64(0x10000); v != 111 {
		t.Fatalf("child read = %d, want 111", v)
	}
	// Child write invisible to parent.
	if err := child.WriteU64(0x10000, 222); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadU64(0x10000); v != 111 {
		t.Errorf("parent sees child write: %d", v)
	}
	// Parent write invisible to child.
	if err := as.WriteU64(0x11000, 333); err != nil {
		t.Fatal(err)
	}
	if v, _ := child.ReadU64(0x11000); v != 0 {
		t.Errorf("child sees parent write: %d", v)
	}
	// Exactly one CoW copy charged to the child.
	if c := child.Stats().CowCopies; c != 1 {
		t.Errorf("child CoW copies = %d, want 1", c)
	}
}

func TestForkChain(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 4*PageSize, PermRW, "data")
	// Keep mutating one space; each fork freezes the value at fork time.
	var snaps []*AddressSpace
	for i := 0; i < 20; i++ {
		if err := as.WriteU64(0x10000, uint64(i)); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, as.Fork())
	}
	for i, s := range snaps {
		v, err := s.ReadU64(0x10000)
		if err != nil || v != uint64(i) {
			t.Errorf("snapshot %d sees %d, want %d (%v)", i, v, i, err)
		}
	}
	for _, s := range snaps {
		s.Release()
	}
	as.Release()
	if live := as.Alloc().Live(); live != 0 {
		t.Errorf("leaked %d frames after releasing all spaces", live)
	}
}

func TestReleaseFreesFrames(t *testing.T) {
	alloc := NewFrameAllocator(0)
	as := NewAddressSpace(alloc)
	mustMap(t, as, 0, 64*PageSize, PermRW, "data")
	for i := uint64(0); i < 64; i++ {
		if err := as.WriteU8(i*PageSize, 1); err != nil {
			t.Fatal(err)
		}
	}
	child := as.Fork()
	for i := uint64(0); i < 32; i++ {
		if err := child.WriteU8(i*PageSize, 2); err != nil {
			t.Fatal(err)
		}
	}
	if live := alloc.Live(); live != 96 {
		t.Fatalf("live = %d, want 96 (64 shared + 32 CoW)", live)
	}
	child.Release()
	if live := alloc.Live(); live != 64 {
		t.Errorf("live after child release = %d, want 64", live)
	}
	as.Release()
	if live := alloc.Live(); live != 0 {
		t.Errorf("live after all released = %d, want 0", live)
	}
}

func TestFootprintSharing(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0, 16*PageSize, PermRW, "data")
	for i := uint64(0); i < 16; i++ {
		if err := as.WriteU8(i*PageSize, 1); err != nil {
			t.Fatal(err)
		}
	}
	child := as.Fork()
	defer child.Release()
	for i := uint64(0); i < 4; i++ {
		if err := child.WriteU8(i*PageSize, 2); err != nil {
			t.Fatal(err)
		}
	}
	fp := child.Footprint()
	if fp.PrivatePages != 4 || fp.SharedPages != 12 {
		t.Errorf("child footprint = %+v, want 4 private / 12 shared", fp)
	}
	if got := child.ResidentPages(); got != 16 {
		t.Errorf("ResidentPages = %d, want 16", got)
	}
}

func TestForEachPageOrdered(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0, 1<<30, PermRW, "big")
	want := []uint64{0x0, 0x5000, 0x200000, 0x40000000 - PageSize}
	for i, a := range want {
		if err := as.WriteU8(a, byte(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	as.ForEachPage(func(addr uint64, f *Frame) { got = append(got, addr) })
	if len(got) != len(want) {
		t.Fatalf("visited %d pages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("page %d at %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestOOM(t *testing.T) {
	alloc := NewFrameAllocator(4)
	as := NewAddressSpace(alloc)
	mustMap(t, as, 0, 64*PageSize, PermRW, "data")
	var err error
	for i := uint64(0); i < 64 && err == nil; i++ {
		err = as.WriteU8(i*PageSize, 1)
	}
	if f, ok := IsFault(err); !ok || f.Kind != FaultOOM {
		t.Fatalf("want OOM fault, got %v", err)
	}
}

func TestReadCString(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, PageSize, PermRW, "data")
	if err := as.WriteAt([]byte("hello\x00world"), 0x10000); err != nil {
		t.Fatal(err)
	}
	s, err := as.ReadCString(0x10000, 64)
	if err != nil || s != "hello" {
		t.Fatalf("ReadCString = %q, %v", s, err)
	}
	if _, err := as.ReadCString(0x10006, 3); err == nil {
		t.Error("unterminated ReadCString succeeded")
	}
}

func TestTouchWritable(t *testing.T) {
	as := newAS(t)
	mustMap(t, as, 0x10000, 2*PageSize, PermRW, "data")
	if err := as.WriteU8(0x10000, 7); err != nil {
		t.Fatal(err)
	}
	child := as.Fork()
	defer child.Release()
	if err := child.TouchWritable(0x10000); err != nil {
		t.Fatal(err)
	}
	if c := child.Stats().CowCopies; c != 1 {
		t.Errorf("CoW copies after touch = %d, want 1", c)
	}
	if v, _ := child.ReadU8(0x10000); v != 7 {
		t.Errorf("touched page content = %d, want 7", v)
	}
}

// TestQuickReadWriteModel cross-checks the paged store against a flat model
// under random word writes.
func TestQuickReadWriteModel(t *testing.T) {
	const base, pages = 0x40000, 64
	as := newAS(t)
	mustMap(t, as, base, pages*PageSize, PermRW, "data")
	model := make(map[uint64]uint64)
	f := func(slot uint16, val uint64) bool {
		addr := base + uint64(slot%(pages*PageSize/8))*8
		if err := as.WriteU64(addr, val); err != nil {
			return false
		}
		model[addr] = val
		got, err := as.ReadU64(addr)
		if err != nil || got != val {
			return false
		}
		// Spot-check an unrelated previously written slot.
		for a, v := range model {
			got, err := as.ReadU64(a)
			return err == nil && got == v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickForkIsolation asserts, for random write sequences, that a fork
// taken mid-sequence never observes writes issued after the fork.
func TestQuickForkIsolation(t *testing.T) {
	const base, pages = 0x40000, 32
	f := func(seed int64, nWrites uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		as := NewAddressSpace(NewFrameAllocator(0))
		if err := as.Map(base, pages*PageSize, PermRW, "d"); err != nil {
			return false
		}
		defer as.Release()
		n := int(nWrites%40) + 2
		cut := n / 2
		frozen := make(map[uint64]uint64)
		var snap *AddressSpace
		for i := 0; i < n; i++ {
			if i == cut {
				snap = as.Fork()
			}
			addr := base + uint64(rng.Intn(pages*PageSize/8))*8
			val := rng.Uint64()
			if err := as.WriteU64(addr, val); err != nil {
				return false
			}
			if i < cut {
				frozen[addr] = val
			}
		}
		defer snap.Release()
		for a, v := range frozen {
			got, err := snap.ReadU64(a)
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentForkWriters exercises parallel CoW from a shared snapshot;
// run with -race to validate the atomic refcount protocol.
func TestConcurrentForkWriters(t *testing.T) {
	alloc := NewFrameAllocator(0)
	parent := NewAddressSpace(alloc)
	mustMap(t, parent, 0, 256*PageSize, PermRW, "data")
	for i := uint64(0); i < 256; i++ {
		if err := parent.WriteU64(i*PageSize, i); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		child := parent.Fork()
		wg.Add(1)
		go func(w int, child *AddressSpace) {
			defer wg.Done()
			defer child.Release()
			for i := uint64(0); i < 256; i++ {
				if err := child.WriteU64(i*PageSize+8, uint64(w)); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
			for i := uint64(0); i < 256; i++ {
				v, err := child.ReadU64(i * PageSize)
				if err != nil || v != i {
					errs <- fmt.Errorf("worker %d: page %d corrupted: %d, %v", w, i, v, err)
					return
				}
				v, err = child.ReadU64(i*PageSize + 8)
				if err != nil || v != uint64(w) {
					errs <- fmt.Errorf("worker %d: private write lost: %d, %v", w, v, err)
					return
				}
			}
		}(w, child)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	parent.Release()
	if live := alloc.Live(); live != 0 {
		t.Errorf("leaked %d frames", live)
	}
}

func TestStatsAccumulate(t *testing.T) {
	var a, b Stats
	a = Stats{CowCopies: 1, ZeroFills: 2, NodeClones: 3, TLBHits: 4, TLBMisses: 5}
	b.Add(a)
	b.Add(a)
	if b.CowCopies != 2 || b.ZeroFills != 4 || b.NodeClones != 6 ||
		b.TLBHits != 8 || b.TLBMisses != 10 {
		t.Errorf("Stats.Add broken: %+v", b)
	}
}
