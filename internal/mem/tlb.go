package mem

import "sync"

// The software TLB: two small direct-mapped caches per address space that
// short-circuit the hot path of the whole system. The paper's cost model
// makes snapshot capture/restore O(1) and pushes all sharing cost onto the
// write path, so the per-access work — VMA permission check, 4-level radix
// walk, atomic refcount loads — is what every guest load and store pays.
// The TLB caches the *result* of that work per virtual page:
//
//   - a read entry (vpn → frame) asserts the page is mapped with PermRead
//     and names its backing frame (nil = demand-zero);
//   - a write entry (vpn → frame, epoch) asserts the page is mapped with
//     PermWrite and that the frame was privately owned by this space
//     *during the recorded snapshot epoch*, so while the epoch still
//     matches, a store may go straight to frame memory with no CoW check.
//
// Because entries cache permission and ownership decisions, they must be
// invalidated at every boundary that could change either:
//
//   - Capture (Fork, AdvanceEpoch): the parent's privately-owned pages
//     become shared the instant a fork exists. Rather than flushing, the
//     capture bumps the space's snapshot epoch; write entries carry the
//     epoch they were filled in, so every pre-capture entry goes stale in
//     O(1) without touching the entry block. Read entries stay valid — a
//     newly shared frame is still the correct backing for reads until
//     this space writes it, and the CoW fill refreshes the read entry.
//   - Unmap, Protect, Brk shrink: mappings or permissions change, so both
//     caches flush;
//   - Release: the frames are gone, so both caches flush.
//
// A sealed snapshot space (Seal) is read concurrently by workers restoring
// it (State.Restore forks it from many goroutines at once), so sealing
// disables this single-owner TLB entirely; sealed reads instead go through
// a separate lock-free read-only cache (see sealedTLB in addrspace.go).
//
// The entry arrays live behind a lazily-allocated pointer so that Fork —
// the O(1) snapshot primitive the paper's latency claims rest on — pays
// nothing for the TLB: a fresh fork starts with no entry block and
// allocates one only when its first slow-path access fills an entry.
type tlb struct {
	// off suppresses fills (and therefore future hits): set for sealed
	// snapshot spaces and for benchmark baselines.
	off bool

	// hits and misses count per-page fast-path outcomes for guest read
	// and write accesses. They live here, not in Stats, so the hot path
	// touches only cache lines it already owns; Stats() folds them in.
	hits   int64
	misses int64

	e *tlbEntries // nil until the first fill
}

const (
	tlbBits = 6 // 64 entries per cache
	tlbSize = 1 << tlbBits
	tlbMask = tlbSize - 1
)

// tlbEntries is the direct-mapped entry block. Tags hold vpn+1 so the zero
// value is invalid (vpn 0 — address 0 — is mappable). Write entries
// additionally record the snapshot epoch they were filled in: a probe hits
// only when both the tag and the epoch match, which is what makes capture
// an O(1) epoch bump instead of a flush. A stale entry's frame pointer is
// never dereferenced (the epoch check fails first), so entries need no
// eager invalidation when the frame is later CoW-replaced or released.
type tlbEntries struct {
	rtag   [tlbSize]uint64
	rframe [tlbSize]*Frame
	wtag   [tlbSize]uint64
	wepoch [tlbSize]uint64
	wframe [tlbSize]*Frame
}

// tlbEntriesPool recycles entry blocks: the engine restores (forks) one
// short-lived address space per extension step, and allocating a fresh
// block per context showed up as GC pressure in engine profiles. Blocks
// are zeroed before Put, so Get always returns an all-invalid block.
var tlbEntriesPool = sync.Pool{New: func() any { return new(tlbEntries) }}

// readFrame probes the read cache. On a hit it charges the hit and returns
// the cached frame (nil frame = demand-zero page, ok = true).
// hot_path: the guest read fast path; a tag compare and two loads.
// inline:
func (t *tlb) readFrame(vpn uint64) (*Frame, bool) {
	e := t.e
	if e == nil {
		return nil, false
	}
	i := vpn & tlbMask
	if e.rtag[i] != vpn+1 {
		return nil, false
	}
	t.hits++
	return e.rframe[i], true
}

// writeFrame probes the write cache for the current snapshot epoch. On a
// hit it charges the hit and returns the privately-owned frame; an entry
// recorded under an earlier epoch never hits, because an intervening
// capture may have shared the frame.
// hot_path: the guest write fast path; tag+epoch compare and two loads.
// inline:
func (t *tlb) writeFrame(vpn, epoch uint64) (*Frame, bool) {
	e := t.e
	if e == nil {
		return nil, false
	}
	i := vpn & tlbMask
	if e.wtag[i] != vpn+1 || e.wepoch[i] != epoch {
		return nil, false
	}
	t.hits++
	return e.wframe[i], true
}

// entries returns the entry block, taking one from the pool on first use.
// cheap: one pooled allocation per space lifetime, amortized to zero.
func (t *tlb) entries() *tlbEntries {
	if t.e == nil {
		t.e = tlbEntriesPool.Get().(*tlbEntries)
	}
	return t.e
}

// fillRead records vpn → f (nil f = demand-zero) after a slow-path read
// resolution, charging one miss.
// cheap: miss-path bookkeeping; at most one pooled block fetch.
func (t *tlb) fillRead(vpn uint64, f *Frame) {
	if t.off {
		return
	}
	t.misses++
	e := t.entries()
	i := vpn & tlbMask
	e.rtag[i] = vpn + 1
	e.rframe[i] = f
}

// fillWrite records vpn → f under the given snapshot epoch after a
// slow-path write resolution, charging one miss. f is privately owned
// (ensureFrame guarantees it). The read entry for vpn, if present, is
// refreshed: a CoW copy just replaced the frame the reader cached.
// cheap: miss-path bookkeeping; at most one pooled block fetch.
func (t *tlb) fillWrite(vpn uint64, f *Frame, epoch uint64) {
	if t.off {
		return
	}
	t.misses++
	e := t.entries()
	i := vpn & tlbMask
	e.wtag[i] = vpn + 1
	e.wepoch[i] = epoch
	e.wframe[i] = f
	if e.rtag[i] == vpn+1 {
		e.rframe[i] = f
	}
}

// refreshRead updates an existing read entry for vpn to point at f. Used
// by the kernel write path (WriteForce), which may CoW-replace a frame but
// must not assert guest readability or writability (the page may be
// exec-only), and which stays out of the hit/miss accounting.
// cheap: two loads and at most one store.
func (t *tlb) refreshRead(vpn uint64, f *Frame) {
	e := t.e
	if e == nil {
		return
	}
	if i := vpn & tlbMask; e.rtag[i] == vpn+1 {
		e.rframe[i] = f
	}
}

// flush drops every entry (mapping/permission change or release) and
// returns the block to the pool: flush points are cold, and a released
// space should not pin its block.
func (t *tlb) flush() {
	if e := t.e; e != nil {
		*e = tlbEntries{} // the next owner must see an all-invalid block
		tlbEntriesPool.Put(e)
		t.e = nil
	}
}
