package mem

import "sync/atomic"

// tableNode is one node of a persistent 4-level radix page table.
//
// Persistence discipline: a node reachable through any node whose refcount
// exceeds one is logically frozen and must never be mutated. Writers that
// need a private path perform path copying: they clone every shared node
// from the root down to the PTE, retaining the children of each clone, and
// only then mutate. Snapshot creation is therefore O(1) — it just retains
// the root — while the first write to each shared subtree pays for the
// pointer copies, and the first write to each shared page pays a single
// 4 KiB copy (the simulated CoW fault).
type tableNode struct {
	ref   atomic.Int32
	level int8
	kids  []*tableNode // level > 0: next-level nodes, len levelSize
	ptes  []*Frame     // level == 0: physical frames, len levelSize
}

func newNode(level int8) *tableNode {
	n := &tableNode{level: level}
	n.ref.Store(1)
	if level == 0 {
		n.ptes = make([]*Frame, levelSize)
	} else {
		n.kids = make([]*tableNode, levelSize)
	}
	return n
}

func retainNode(n *tableNode) { n.ref.Add(1) }

// releaseNode drops one reference; at zero it recursively releases children
// and returns frames to the allocator. Node memory itself is left to GC.
func releaseNode(fa *FrameAllocator, n *tableNode) {
	if n == nil || n.ref.Add(-1) != 0 {
		return
	}
	if n.level == 0 {
		for _, f := range n.ptes {
			if f != nil {
				fa.release(f)
			}
		}
		return
	}
	for _, k := range n.kids {
		if k != nil {
			releaseNode(fa, k)
		}
	}
}

// cloneNode returns a private copy of n with refcount 1, retaining every
// child so the clone and the original safely share subtrees.
func cloneNode(n *tableNode) *tableNode {
	c := &tableNode{level: n.level}
	c.ref.Store(1)
	if n.level == 0 {
		c.ptes = make([]*Frame, levelSize)
		copy(c.ptes, n.ptes)
		for _, f := range c.ptes {
			if f != nil {
				retain(f)
			}
		}
		return c
	}
	c.kids = make([]*tableNode, levelSize)
	copy(c.kids, n.kids)
	for _, k := range c.kids {
		if k != nil {
			retainNode(k)
		}
	}
	return c
}

// lookup walks the table for a read access and returns the frame backing
// addr, or nil when the page has never been written (demand-zero).
// hot_path: a pure 4-level pointer chase; no allocation, no locks.
func lookup(root *tableNode, addr uint64) *Frame {
	n := root
	for level := numLevels - 1; level > 0; level-- {
		if n == nil {
			return nil
		}
		n = n.kids[levelIndex(addr, level)]
	}
	if n == nil {
		return nil
	}
	return n.ptes[levelIndex(addr, 0)]
}

// pageTable wraps the mutable root pointer plus the bookkeeping the write
// path needs. It is owned by exactly one AddressSpace.
type pageTable struct {
	root  *tableNode
	alloc *FrameAllocator
	// epoch is the space's current snapshot-epoch token, drawn from the
	// process-wide counter so every (space, epoch) pair is globally unique.
	// ensureFrame stamps it onto frames as they are privatized or written;
	// a frame whose stamp equals the current token is exclusively owned by
	// this table and was written during the current epoch.
	epoch uint64
}

// ensureLeaf returns the exclusively-owned level-0 node covering addr,
// path-copying every shared node from the root down. The leaf spans
// levelSize contiguous pages, so run-length write paths resolve it once
// per span instead of re-walking from the root per page. stats is charged
// for node clones.
// cheap: the CoW fault path — node clones allocate by design, amortized
// to one per shared subtree per epoch.
func (pt *pageTable) ensureLeaf(addr uint64, stats *Stats) *tableNode {
	if pt.root == nil {
		pt.root = newNode(numLevels - 1)
	} else if pt.root.ref.Load() > 1 {
		c := cloneNode(pt.root)
		releaseNode(pt.alloc, pt.root)
		pt.root = c
		stats.NodeClones++
	}
	n := pt.root
	for level := numLevels - 1; level > 0; level-- {
		idx := levelIndex(addr, level)
		child := n.kids[idx]
		switch {
		case child == nil:
			child = newNode(int8(level - 1))
			n.kids[idx] = child
		case child.ref.Load() > 1:
			c := cloneNode(child)
			releaseNode(pt.alloc, child)
			n.kids[idx] = c
			child = c
			stats.NodeClones++
		}
		n = child
	}
	return n
}

// ensureFrame returns a privately-owned frame at leaf.ptes[idx],
// materializing a demand-zero page or CoW-copying a shared one. leaf must
// be exclusively owned (returned by ensureLeaf). stats is charged for
// zero fills and CoW copies.
// cheap: the CoW fault path — the private page copy allocates by design,
// once per shared page per epoch.
func (pt *pageTable) ensureFrame(leaf *tableNode, idx int, stats *Stats) (*Frame, error) {
	f := leaf.ptes[idx]
	switch {
	case f == nil:
		var err error
		f, err = pt.alloc.Alloc()
		if err != nil {
			return nil, err
		}
		leaf.ptes[idx] = f
		stats.ZeroFills++
	case f.ref.Load() > 1:
		c, err := pt.alloc.clone(f)
		if err != nil {
			return nil, err
		}
		pt.alloc.release(f)
		leaf.ptes[idx] = c
		f = c
		stats.CowCopies++
	}
	// Stamp the frame with the current epoch on every slow-path resolution,
	// including the already-private arm: the restamp is what lets an
	// incremental checkpoint (which advances the epoch without forking, so
	// refcounts stay 1) see "written since the last capture" as
	// f.priv >= captureEpoch. The frame is exclusively owned here, so the
	// plain store cannot race with a concurrent reader.
	f.priv = pt.epoch
	return f, nil
}

// ensureWritable returns a frame backing addr that is exclusively owned by
// this table, path-copying shared nodes and CoW-copying a shared frame.
// stats is charged for clones, zero fills and CoW copies.
// cheap: composition of the two CoW fault helpers.
func (pt *pageTable) ensureWritable(addr uint64, stats *Stats) (*Frame, error) {
	return pt.ensureFrame(pt.ensureLeaf(addr, stats), levelIndex(addr, 0), stats)
}

// clearPage drops the frame backing addr if one exists. The path is made
// exclusive first so shared snapshots keep their copy.
func (pt *pageTable) clearPage(addr uint64, stats *Stats) {
	if pt.root == nil {
		return
	}
	if pt.root.ref.Load() > 1 {
		c := cloneNode(pt.root)
		releaseNode(pt.alloc, pt.root)
		pt.root = c
		stats.NodeClones++
	}
	n := pt.root
	for level := numLevels - 1; level > 0; level-- {
		idx := levelIndex(addr, level)
		child := n.kids[idx]
		if child == nil {
			return
		}
		if child.ref.Load() > 1 {
			c := cloneNode(child)
			releaseNode(pt.alloc, child)
			n.kids[idx] = c
			child = c
			stats.NodeClones++
		}
		n = child
	}
	idx := levelIndex(addr, 0)
	if f := n.ptes[idx]; f != nil {
		pt.alloc.release(f)
		n.ptes[idx] = nil
	}
}

// forEachPage invokes fn for every resident page, in ascending VPN order.
func forEachPage(root *tableNode, fn func(vpn uint64, f *Frame)) {
	var walk func(n *tableNode, base uint64)
	walk = func(n *tableNode, base uint64) {
		if n == nil {
			return
		}
		if n.level == 0 {
			for i, f := range n.ptes {
				if f != nil {
					fn(base+uint64(i), f)
				}
			}
			return
		}
		span := uint64(1) << (uint(n.level) * levelBits)
		for i, k := range n.kids {
			if k != nil {
				walk(k, base+uint64(i)*span)
			}
		}
	}
	walk(root, 0)
}

// Footprint summarizes physical residency of one table for the sharing
// experiments (E8): frames reachable, split by whether they are shared with
// another table, plus interior node counts.
type Footprint struct {
	PrivatePages int // frames with refcount 1
	SharedPages  int // frames with refcount > 1
	PrivateNodes int
	SharedNodes  int
}

// PrivateBytes returns the number of bytes exclusively owned.
func (f Footprint) PrivateBytes() int64 { return int64(f.PrivatePages) * PageSize }

// SharedBytes returns the number of bytes shared with other tables.
func (f Footprint) SharedBytes() int64 { return int64(f.SharedPages) * PageSize }

func footprint(root *tableNode) Footprint {
	var fp Footprint
	var walk func(n *tableNode)
	walk = func(n *tableNode) {
		if n == nil {
			return
		}
		if n.ref.Load() > 1 {
			fp.SharedNodes++
		} else {
			fp.PrivateNodes++
		}
		if n.level == 0 {
			for _, f := range n.ptes {
				if f == nil {
					continue
				}
				if f.ref.Load() > 1 {
					fp.SharedPages++
				} else {
					fp.PrivatePages++
				}
			}
			return
		}
		for _, k := range n.kids {
			if k != nil {
				walk(k)
			}
		}
	}
	walk(root)
	return fp
}
