package mem

// Stats counts the fault-path events one address space observed. Only
// rare events are counted — per-access counters would put a store on the
// read/write fast path and, worse, false-share cache lines between
// neighbouring address spaces evaluated on different cores (measured as a
// 2x parallel slowdown before they were removed).
type Stats struct {
	CowCopies  int64 // pages copied by copy-on-write faults
	ZeroFills  int64 // demand-zero pages materialized
	NodeClones int64 // page-table nodes path-copied
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.CowCopies += o.CowCopies
	s.ZeroFills += o.ZeroFills
	s.NodeClones += o.NodeClones
}
