package mem

// Stats counts the fault-path and TLB events one address space observed.
// The fault counters (CowCopies, ZeroFills, NodeClones) are charged only
// on rare slow-path events. The TLB counters are per-access, but their
// backing stores live inside the address space's own tlb struct — cache
// lines the fast path touches anyway — not in a shared block, so
// neighbouring address spaces evaluated on different cores do not
// false-share them (an earlier per-access counter in a shared line was
// measured as a 2x parallel slowdown and removed).
type Stats struct {
	CowCopies  int64 // pages copied by copy-on-write faults
	ZeroFills  int64 // demand-zero pages materialized
	NodeClones int64 // page-table nodes path-copied
	Epochs     int64 // snapshot-epoch advances (captures observed by this space)

	// TLBHits and TLBMisses count per-page software-TLB outcomes for
	// guest read and write data accesses (instruction fetches and the
	// kernel WriteForce path are not counted). For every such access,
	// each page-sized unit increments exactly one of the two, so
	// TLBHits+TLBMisses equals the number of page accesses issued.
	TLBHits   int64
	TLBMisses int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.CowCopies += o.CowCopies
	s.ZeroFills += o.ZeroFills
	s.NodeClones += o.NodeClones
	s.Epochs += o.Epochs
	s.TLBHits += o.TLBHits
	s.TLBMisses += o.TLBMisses
}
