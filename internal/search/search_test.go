package search

import (
	"math/rand"
	"sort"
	"testing"
)

func items(choices ...uint64) []Item[string] {
	out := make([]Item[string], len(choices))
	for i, c := range choices {
		out[i] = Item[string]{Payload: "p", Choice: c}
	}
	return out
}

func popAll[T any](s Strategy[T]) []Item[T] {
	var out []Item[T]
	for {
		it, ok := s.Pop()
		if !ok {
			return out
		}
		out = append(out, it)
	}
}

func TestDFSOrder(t *testing.T) {
	d := NewDFS[string]()
	d.PushAll(items(0, 1, 2)) // siblings of node A
	// Pop A0, it guesses two children.
	it, ok := d.Pop()
	if !ok || it.Choice != 0 {
		t.Fatalf("first pop = %v", it)
	}
	d.PushAll(items(0, 1))
	got := popAll[string](d)
	want := []uint64{0, 1, 1, 2} // children first (LIFO), then A1, A2
	if len(got) != len(want) {
		t.Fatalf("popped %d", len(got))
	}
	for i, w := range want {
		if got[i].Choice != w {
			t.Errorf("pop %d = %d, want %d", i, got[i].Choice, w)
		}
	}
}

func TestBFSOrder(t *testing.T) {
	b := NewBFS[string]()
	b.PushAll(items(0, 1))
	it, _ := b.Pop()
	if it.Choice != 0 {
		t.Fatalf("first = %d", it.Choice)
	}
	b.PushAll(items(10, 11)) // children queue behind sibling 1
	var got []uint64
	for _, it := range popAll[string](b) {
		got = append(got, it.Choice)
	}
	want := []uint64{1, 10, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bfs order = %v, want %v", got, want)
		}
	}
}

func TestBFSCompaction(t *testing.T) {
	b := NewBFS[int]()
	for i := 0; i < 5000; i++ {
		b.PushAll([]Item[int]{{Choice: uint64(i)}})
	}
	for i := 0; i < 4000; i++ {
		it, ok := b.Pop()
		if !ok || it.Choice != uint64(i) {
			t.Fatalf("pop %d = %v, %v", i, it.Choice, ok)
		}
	}
	if b.Len() != 1000 {
		t.Errorf("len = %d, want 1000", b.Len())
	}
	for i := 4000; i < 5000; i++ {
		it, _ := b.Pop()
		if it.Choice != uint64(i) {
			t.Fatalf("post-compact pop = %d, want %d", it.Choice, i)
		}
	}
}

func TestBestPriorityOrder(t *testing.T) {
	a := NewAStar[string]()
	a.PushAll([]Item[string]{
		{Choice: 0, Priority: 5},
		{Choice: 1, Priority: 2},
		{Choice: 2, Priority: 9},
		{Choice: 3, Priority: 2}, // tie with 1: FIFO → 1 first
	})
	var got []uint64
	for _, it := range popAll[string](a) {
		got = append(got, it.Choice)
	}
	want := []uint64{1, 3, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("astar order = %v, want %v", got, want)
		}
	}
}

func TestBestHeapStress(t *testing.T) {
	a := NewAStar[int]()
	rng := rand.New(rand.NewSource(5))
	var ref []int64
	for i := 0; i < 2000; i++ {
		p := int64(rng.Intn(100))
		a.PushAll([]Item[int]{{Priority: p}})
		ref = append(ref, p)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	for i, it := range popAll[int](a) {
		if it.Priority != ref[i] {
			t.Fatalf("pop %d priority = %d, want %d", i, it.Priority, ref[i])
		}
	}
}

func TestSMAStarEviction(t *testing.T) {
	var dropped []int64
	s := NewSMAStar[string](3, func(it Item[string]) { dropped = append(dropped, it.Priority) })
	s.PushAll([]Item[string]{{Priority: 1}, {Priority: 2}, {Priority: 3}})
	if s.Evicted != 0 {
		t.Fatalf("early eviction")
	}
	s.PushAll([]Item[string]{{Priority: 0}}) // evicts worst (3)
	if s.Evicted != 1 || len(dropped) != 1 || dropped[0] != 3 {
		t.Fatalf("evicted=%d dropped=%v", s.Evicted, dropped)
	}
	got := popAll[string](s)
	if len(got) != 3 || got[0].Priority != 0 || got[2].Priority != 2 {
		t.Fatalf("remaining = %v", got)
	}
	if s.Name() != "sma-star" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	seq := func(seed uint64) []uint64 {
		r := NewRandom[string](seed)
		r.PushAll(items(0, 1, 2, 3, 4, 5, 6, 7))
		var out []uint64
		for _, it := range popAll[string](r) {
			out = append(out, it.Choice)
		}
		return out
	}
	a, b := seq(99), seq(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	c := seq(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical order (suspicious)")
	}
	// All items present exactly once.
	seen := map[uint64]bool{}
	for _, v := range a {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("lost items: %v", a)
	}
}

func TestExternalPicker(t *testing.T) {
	// Always pick the highest Choice.
	e := NewExternal[string](func(pending []Item[string]) int {
		best, bi := uint64(0), -1
		for i, it := range pending {
			if it.Choice >= best {
				best, bi = it.Choice, i
			}
		}
		return bi
	})
	e.PushAll(items(3, 1, 4, 1, 5))
	var got []uint64
	for _, it := range popAll[string](e) {
		got = append(got, it.Choice)
	}
	want := []uint64{5, 4, 3, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("external order = %v, want %v", got, want)
		}
	}
	// Nil picker falls back to LIFO.
	f := NewExternal[string](nil)
	f.PushAll(items(1, 2))
	it, _ := f.Pop()
	if it.Choice != 2 {
		t.Errorf("nil-picker pop = %d, want 2 (LIFO)", it.Choice)
	}
}

func TestDrain(t *testing.T) {
	for _, s := range []Strategy[string]{
		NewDFS[string](), NewBFS[string](), NewAStar[string](),
		NewRandom[string](1), NewExternal[string](nil),
		NewSMAStar[string](10, nil),
	} {
		s.PushAll(items(0, 1, 2))
		var n int
		s.Drain(func(Item[string]) { n++ })
		if n != 3 || s.Len() != 0 {
			t.Errorf("%s: drained %d, len %d", s.Name(), n, s.Len())
		}
		if _, ok := s.Pop(); ok {
			t.Errorf("%s: pop after drain succeeded", s.Name())
		}
	}
}

func TestNames(t *testing.T) {
	if NewDFS[int]().Name() != "dfs" || NewBFS[int]().Name() != "bfs" ||
		NewAStar[int]().Name() != "astar" || NewRandom[int](1).Name() != "random" ||
		NewExternal[int](nil).Name() != "external" || NewBest[int]("coverage").Name() != "coverage" {
		t.Error("strategy names wrong")
	}
}
