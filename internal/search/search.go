// Package search implements the scheduling policies the paper separates
// from the snapshot mechanism (§3.1): DFS, BFS, A*, memory-bounded SM-A*,
// deterministic Random, and an externally controlled strategy. A strategy
// orders candidate extension steps; it never touches snapshots itself.
//
// Strategies are not safe for concurrent use; the engine serializes access.
package search

// Item is one schedulable candidate extension step: an opaque reference to
// the parent partial candidate plus the extension number.
type Item[T any] struct {
	Payload  T      // parent partial candidate (opaque to the strategy)
	Choice   uint64 // extension number delivered as the sys_guess result
	Priority int64  // A*/coverage cost: lower is scheduled first
	Depth    int    // distance from the root candidate
	seq      uint64 // insertion order, for deterministic tie-breaking
}

// Strategy schedules extension evaluation. PushAll receives all sibling
// extensions of one guess at once so the strategy controls sibling order.
type Strategy[T any] interface {
	// Name identifies the policy ("dfs", "bfs", ...).
	Name() string
	// PushAll enqueues sibling extensions (ordered by ascending Choice).
	PushAll(items []Item[T])
	// Pop removes and returns the next extension to evaluate.
	Pop() (Item[T], bool)
	// Len returns the number of queued extensions.
	Len() int
	// Drain removes every queued extension, passing each to drop.
	Drain(drop func(Item[T]))
}

// DFS explores depth-first: LIFO over nodes, siblings in ascending Choice
// order — the paper's default policy for fast backtracking.
type DFS[T any] struct {
	stack []Item[T]
	seq   uint64
}

// NewDFS returns a depth-first strategy.
func NewDFS[T any]() *DFS[T] { return &DFS[T]{} }

// Name implements Strategy.
func (d *DFS[T]) Name() string { return "dfs" }

// PushAll implements Strategy. Siblings are pushed in reverse so the lowest
// Choice pops first.
func (d *DFS[T]) PushAll(items []Item[T]) {
	for i := len(items) - 1; i >= 0; i-- {
		it := items[i]
		it.seq = d.seq
		d.seq++
		d.stack = append(d.stack, it)
	}
}

// Pop implements Strategy.
func (d *DFS[T]) Pop() (Item[T], bool) {
	if len(d.stack) == 0 {
		var zero Item[T]
		return zero, false
	}
	it := d.stack[len(d.stack)-1]
	d.stack = d.stack[:len(d.stack)-1]
	return it, true
}

// Len implements Strategy.
func (d *DFS[T]) Len() int { return len(d.stack) }

// StealKind implements Stealable: depth-first exploration of an exhaustive
// search is order-insensitive across workers, so the engine may shard it
// over per-worker deques (LIFO locally ≡ DFS within each worker's subtree).
func (d *DFS[T]) StealKind() StealKind { return StealLIFO }

// Drain implements Strategy.
func (d *DFS[T]) Drain(drop func(Item[T])) {
	for _, it := range d.stack {
		drop(it)
	}
	d.stack = d.stack[:0]
}

// BFS explores breadth-first: FIFO, siblings in ascending Choice order.
type BFS[T any] struct {
	q    []Item[T]
	head int
}

// NewBFS returns a breadth-first strategy.
func NewBFS[T any]() *BFS[T] { return &BFS[T]{} }

// Name implements Strategy.
func (b *BFS[T]) Name() string { return "bfs" }

// PushAll implements Strategy.
func (b *BFS[T]) PushAll(items []Item[T]) {
	b.q = append(b.q, items...)
}

// Pop implements Strategy.
func (b *BFS[T]) Pop() (Item[T], bool) {
	if b.head >= len(b.q) {
		var zero Item[T]
		return zero, false
	}
	it := b.q[b.head]
	var zero Item[T]
	b.q[b.head] = zero // release reference for GC
	b.head++
	if b.head > 1024 && b.head*2 > len(b.q) {
		b.q = append(b.q[:0], b.q[b.head:]...)
		b.head = 0
	}
	return it, true
}

// Len implements Strategy.
func (b *BFS[T]) Len() int { return len(b.q) - b.head }

// Drain implements Strategy.
func (b *BFS[T]) Drain(drop func(Item[T])) {
	for _, it := range b.q[b.head:] {
		drop(it)
	}
	b.q = b.q[:0]
	b.head = 0
}

// binary min-heap ordered by (Priority, seq).
type heap[T any] struct {
	items []Item[T]
}

func (h *heap[T]) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

// siftUp restores heap order upward from index i.
func (h *heap[T]) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

// siftDown restores heap order downward from index i.
func (h *heap[T]) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h.items) && h.less(l, s) {
			s = l
		}
		if r < len(h.items) && h.less(r, s) {
			s = r
		}
		if s == i {
			return
		}
		h.items[i], h.items[s] = h.items[s], h.items[i]
		i = s
	}
}

func (h *heap[T]) push(it Item[T]) {
	h.items = append(h.items, it)
	h.siftUp(len(h.items) - 1)
}

func (h *heap[T]) pop() (Item[T], bool) {
	if len(h.items) == 0 {
		var zero Item[T]
		return zero, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero Item[T]
	h.items[last] = zero
	h.items = h.items[:last]
	h.siftDown(0)
	return top, true
}

// popWorst removes the item with the highest (Priority, seq). The scan is
// O(n) (the maximum of a min-heap sits in the leaf half); the repair is a
// single O(log n) sift in place, keeping the backing slice — the memory-
// bounded strategy evicts on every overflowing push, so a reallocating
// rebuild here turned each eviction into a whole-queue copy.
func (h *heap[T]) popWorst() (Item[T], bool) {
	n := len(h.items)
	if n == 0 {
		var zero Item[T]
		return zero, false
	}
	worst := n / 2 // the max cannot have children
	for i := worst + 1; i < n; i++ {
		a, b := h.items[i], h.items[worst]
		if a.Priority > b.Priority || (a.Priority == b.Priority && a.seq > b.seq) {
			worst = i
		}
	}
	it := h.items[worst]
	last := n - 1
	h.items[worst] = h.items[last]
	var zero Item[T]
	h.items[last] = zero
	h.items = h.items[:last]
	if worst < last {
		// The transplanted leaf may violate order in either direction.
		h.siftDown(worst)
		h.siftUp(worst)
	}
	return it, true
}

// Best is a best-first strategy: a priority queue over Item.Priority with
// deterministic FIFO tie-breaking. A* sets Priority = depth + guest hint;
// coverage-optimized exploration sets Priority from visit counts.
type Best[T any] struct {
	name string
	h    heap[T]
	seq  uint64
}

// NewAStar returns a best-first strategy for A* (Priority = g + h).
func NewAStar[T any]() *Best[T] { return &Best[T]{name: "astar"} }

// NewBest returns a best-first strategy with a custom name.
func NewBest[T any](name string) *Best[T] { return &Best[T]{name: name} }

// Name implements Strategy.
func (b *Best[T]) Name() string { return b.name }

// PushAll implements Strategy.
func (b *Best[T]) PushAll(items []Item[T]) {
	for _, it := range items {
		it.seq = b.seq
		b.seq++
		b.h.push(it)
	}
}

// Pop implements Strategy.
func (b *Best[T]) Pop() (Item[T], bool) { return b.h.pop() }

// Len implements Strategy.
func (b *Best[T]) Len() int { return len(b.h.items) }

// Drain implements Strategy.
func (b *Best[T]) Drain(drop func(Item[T])) {
	for _, it := range b.h.items {
		drop(it)
	}
	b.h.items = b.h.items[:0]
}

// SMAStar is the memory-bounded variant of A* (§3.1 mentions SM-A?): it
// keeps at most capacity queued extensions and evicts the worst when full,
// reporting the eviction through the drop callback so the engine can
// release the evicted extension's snapshot reference. The classic
// back-up-f-values refinement is intentionally omitted; the bound on live
// snapshots is the property the paper's argument needs.
type SMAStar[T any] struct {
	Best[T]
	capacity int
	drop     func(Item[T])
	hook     func(Item[T])
	// Evicted counts extensions dropped due to the memory bound.
	Evicted int64
}

// NewSMAStar returns a bounded best-first strategy. drop may be nil.
func NewSMAStar[T any](capacity int, drop func(Item[T])) *SMAStar[T] {
	if capacity < 1 {
		capacity = 1
	}
	s := &SMAStar[T]{capacity: capacity, drop: drop}
	s.name = "sma-star"
	return s
}

// SetEvictHook registers fn to observe every eviction, after the drop
// callback has run — the engine's telemetry seam, so memory-bounded runs
// surface how many candidates the bound silently discarded. The hook is
// observational: by the time it runs, drop has already consumed the item's
// payload reference. It is invoked under the scheduler's lock and must be
// cheap.
func (s *SMAStar[T]) SetEvictHook(fn func(Item[T])) { s.hook = fn }

// PushAll implements Strategy, evicting worst items beyond capacity.
func (s *SMAStar[T]) PushAll(items []Item[T]) {
	s.Best.PushAll(items)
	for len(s.h.items) > s.capacity {
		it, ok := s.h.popWorst()
		if !ok {
			break
		}
		s.Evicted++
		if s.drop != nil {
			s.drop(it)
		}
		if s.hook != nil {
			s.hook(it)
		}
	}
}

// xorshiftMul advances an xorshift64* state, returning the new state and
// the output word — the PRNG step shared by Random and the sharded
// scheduler's per-worker streams.
// hot_path: three shifts and a multiply.
// inline:
func xorshiftMul(state uint64) (newState, out uint64) {
	x := state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	return x, x * 0x2545f4914f6cdd1d
}

// splitmix64 scrambles z into a decorrelated stream state (used to seed
// independent per-worker generators from one user seed).
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Random pops a uniformly random queued extension, deterministically from
// the seed (xorshift64*), giving reproducible randomized search.
type Random[T any] struct {
	items []Item[T]
	state uint64
	seed  uint64
}

// NewRandom returns a randomized strategy seeded with seed.
func NewRandom[T any](seed uint64) *Random[T] {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Random[T]{state: seed, seed: seed}
}

// Seed returns the seed the strategy was constructed with (the sharded
// scheduler derives per-worker streams from it).
func (r *Random[T]) Seed() uint64 { return r.seed }

// StealKind implements Stealable: randomized exploration has no order to
// preserve, so shards pop uniformly from their local deque.
func (r *Random[T]) StealKind() StealKind { return StealRandom }

// Name implements Strategy.
func (r *Random[T]) Name() string { return "random" }

// PushAll implements Strategy.
func (r *Random[T]) PushAll(items []Item[T]) { r.items = append(r.items, items...) }

func (r *Random[T]) next() uint64 {
	var out uint64
	r.state, out = xorshiftMul(r.state)
	return out
}

// Pop implements Strategy.
func (r *Random[T]) Pop() (Item[T], bool) {
	n := len(r.items)
	if n == 0 {
		var zero Item[T]
		return zero, false
	}
	i := int(r.next() % uint64(n))
	it := r.items[i]
	r.items[i] = r.items[n-1]
	var zero Item[T]
	r.items[n-1] = zero
	r.items = r.items[:n-1]
	return it, true
}

// Len implements Strategy.
func (r *Random[T]) Len() int { return len(r.items) }

// Drain implements Strategy.
func (r *Random[T]) Drain(drop func(Item[T])) {
	for _, it := range r.items {
		drop(it)
	}
	r.items = r.items[:0]
}

// External is the paper's externally controlled strategy: an external
// entity inspects the pending extensions and picks which to evaluate next.
// The picker receives the pending items (do not retain the slice) and
// returns the index to evaluate; returning a negative index falls back to
// LIFO.
type External[T any] struct {
	items []Item[T]
	pick  func(pending []Item[T]) int
}

// NewExternal returns an externally controlled strategy.
func NewExternal[T any](pick func(pending []Item[T]) int) *External[T] {
	return &External[T]{pick: pick}
}

// Name implements Strategy.
func (e *External[T]) Name() string { return "external" }

// PushAll implements Strategy.
func (e *External[T]) PushAll(items []Item[T]) { e.items = append(e.items, items...) }

// Pop implements Strategy.
func (e *External[T]) Pop() (Item[T], bool) {
	n := len(e.items)
	if n == 0 {
		var zero Item[T]
		return zero, false
	}
	i := n - 1
	if e.pick != nil {
		if j := e.pick(e.items); j >= 0 && j < n {
			i = j
		}
	}
	it := e.items[i]
	e.items = append(e.items[:i], e.items[i+1:]...)
	return it, true
}

// Len implements Strategy.
func (e *External[T]) Len() int { return len(e.items) }

// Drain implements Strategy.
func (e *External[T]) Drain(drop func(Item[T])) {
	for _, it := range e.items {
		drop(it)
	}
	e.items = e.items[:0]
}
