package search

import (
	"sync"
	"sync/atomic"
	"testing"
)

func mkItems(vals ...int) []Item[int] {
	out := make([]Item[int], len(vals))
	for i, v := range vals {
		out[i] = Item[int]{Payload: v, Choice: uint64(i)}
	}
	return out
}

// TestShardedSingleWorkerIsDFS: with one shard, Push/Pop must reproduce
// the DFS strategy's order exactly (siblings ascending, newest batch
// first), since the engine routes Workers=1 DFS runs through Sharded.
func TestShardedSingleWorkerIsDFS(t *testing.T) {
	s := NewSharded[int](1, StealLIFO, 0, nil)
	d := NewDFS[int]()
	s.Push(0, mkItems(1, 2, 3))
	d.PushAll(mkItems(1, 2, 3))
	// Interleave: pop one, push a child batch, pop the rest.
	for step := 0; ; step++ {
		it, stolen, ok := s.Pop(0)
		dit, dok := d.Pop()
		if ok != dok {
			t.Fatalf("step %d: sharded ok=%v dfs ok=%v", step, ok, dok)
		}
		if !ok {
			break
		}
		if stolen {
			t.Fatalf("step %d: single shard cannot steal", step)
		}
		if it.Payload != dit.Payload {
			t.Fatalf("step %d: sharded popped %d, dfs %d", step, it.Payload, dit.Payload)
		}
		if step == 0 {
			s.Push(0, mkItems(10, 11))
			d.PushAll(mkItems(10, 11))
		}
		s.Done(0)
	}
	if !s.Quiescent() {
		t.Error("drained pool not quiescent")
	}
}

// TestShardedStealHalf: a thief takes the older half of the victim's
// deque and returns the oldest item first.
func TestShardedStealHalf(t *testing.T) {
	s := NewSharded[int](2, StealLIFO, 0, nil)
	s.Push(0, mkItems(1, 2, 3, 4, 5, 6)) // deque (tail→head pops): 6,5,4,3,2,1... stored reversed
	if s.Len() != 6 {
		t.Fatalf("Len = %d", s.Len())
	}
	it, stolen, ok := s.Pop(1)
	if !ok || !stolen {
		t.Fatalf("Pop(1) = %v stolen=%v", ok, stolen)
	}
	// Push stores reversed so choice 1 pops first locally; the "older"
	// end of worker 0's deque therefore holds the highest choices. The
	// thief must get the oldest queued item (payload 6).
	if it.Payload != 6 {
		t.Errorf("thief got %d, want 6 (oldest)", it.Payload)
	}
	if s.Len() != 5 {
		t.Errorf("Len after steal = %d, want 5", s.Len())
	}
	// Thief banked half-minus-one locally ([5, 4], oldest at the bottom):
	// its next pops stay local and take the newest banked item first.
	it2, stolen2, _ := s.Pop(1)
	if stolen2 {
		t.Error("second pop should hit the banked loot, not steal again")
	}
	if it2.Payload != 4 {
		t.Errorf("banked pop = %d, want 4", it2.Payload)
	}
	s.Done(1)
	s.Done(1)
}

// TestShardedCloseDrains: Close hands every queued item to drop exactly
// once and later pushes are refused.
func TestShardedCloseDrains(t *testing.T) {
	var dropped atomic.Int64
	s := NewSharded[int](4, StealLIFO, 0, func(Item[int]) { dropped.Add(1) })
	s.Push(0, mkItems(1, 2, 3))
	s.Push(2, mkItems(4, 5))
	s.Close()
	if dropped.Load() != 5 {
		t.Errorf("dropped %d items, want 5", dropped.Load())
	}
	if s.Push(1, mkItems(9)) {
		t.Error("push after Close must be refused")
	}
	if _, _, ok := s.Pop(0); ok {
		t.Error("pop after Close must find nothing")
	}
	if !s.Quiescent() || s.Len() != 0 {
		t.Errorf("closed pool: quiescent=%v len=%d", s.Quiescent(), s.Len())
	}
	s.Close() // idempotent
	if dropped.Load() != 5 {
		t.Error("second Close dropped items again")
	}
}

// TestShardedConcurrentTree drives a synthetic fork/join workload from
// every worker under -race: each popped item pushes children until a
// depth bound, and the pending accounting must end exactly at zero with
// every produced item consumed exactly once.
func TestShardedConcurrentTree(t *testing.T) {
	const workers = 4
	const depth = 12
	for _, kind := range []StealKind{StealLIFO, StealRandom} {
		s := NewSharded[int](workers, kind, 42, nil)
		var consumed atomic.Int64
		s.Push(0, mkItems(0, 0)) // two roots at depth 0 (payload = depth)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					it, _, ok := s.Pop(w)
					if !ok {
						if s.Quiescent() {
							return
						}
						continue
					}
					consumed.Add(1)
					if it.Payload < depth {
						s.Push(w, mkItems(it.Payload+1, it.Payload+1))
					}
					s.Done(w)
				}
			}(w)
		}
		wg.Wait()
		want := int64(1<<(depth+2) - 2) // two full binary trees of depth 12
		if consumed.Load() != want {
			t.Errorf("kind %d: consumed %d items, want %d", kind, consumed.Load(), want)
		}
		if !s.Quiescent() || s.Len() != 0 {
			t.Errorf("kind %d: pool not empty after join", kind)
		}
	}
}

// TestPopWorstInPlace is the regression test for the eviction hot path:
// popWorst must keep heap order without reallocating the backing slice
// (the old code rebuilt from a nil slice on every eviction), and must
// remove the genuinely worst (Priority, seq) item.
func TestPopWorstInPlace(t *testing.T) {
	var h heap[int]
	for i := 0; i < 64; i++ {
		h.push(Item[int]{Payload: i, Priority: int64((i * 37) % 64), seq: uint64(i)})
	}
	// Steady-state evict+refill must not allocate at all.
	allocs := testing.AllocsPerRun(100, func() {
		it, ok := h.popWorst()
		if !ok {
			t.Fatal("popWorst on non-empty heap failed")
		}
		it.seq = 0
		h.push(it)
	})
	if allocs != 0 {
		t.Errorf("popWorst+push allocated %.1f times per run, want 0", allocs)
	}
	// Drain by popWorst: priorities must come out non-increasing.
	var last int64 = 1 << 62
	for {
		it, ok := h.popWorst()
		if !ok {
			break
		}
		if it.Priority > last {
			t.Fatalf("popWorst order violated: %d after %d", it.Priority, last)
		}
		last = it.Priority
	}
}

// TestPopWorstHeapValidity interleaves pops and worst-evictions and
// checks the min-heap invariant after every operation.
func TestPopWorstHeapValidity(t *testing.T) {
	var h heap[int]
	check := func() {
		t.Helper()
		for i := 1; i < len(h.items); i++ {
			if h.less(i, (i-1)/2) {
				t.Fatalf("heap violated at %d", i)
			}
		}
	}
	seq := uint64(0)
	for round := 0; round < 200; round++ {
		h.push(Item[int]{Priority: int64((round * 31) % 17), seq: seq})
		seq++
		check()
		switch round % 3 {
		case 0:
			h.pop()
		case 1:
			h.popWorst()
		}
		check()
	}
}
