package search

import "testing"

// The hot_path: annotations on the deque's local push/pop promise zero
// heap allocation per op once the backing array has grown to the
// working-set size (Push's append is the annotated amortized
// exception). The steal path is excluded: stealFrom hands the thief a
// fresh loot slice by design.

func TestDequeLocalPathZeroAlloc(t *testing.T) {
	for _, kind := range []StealKind{StealLIFO, StealRandom} {
		s := NewSharded[int](1, kind, 1, nil)
		batch := make([]Item[int], 4)
		// Warm: grow the shard's backing array past the steady-state
		// depth, then drain so the measured loop never reallocates.
		for i := 0; i < 16; i++ {
			if !s.Push(0, batch) {
				t.Fatal("warm Push failed")
			}
		}
		for {
			_, _, ok := s.Pop(0)
			if !ok {
				break
			}
			s.Done(0)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if !s.Push(0, batch) {
				t.Fatal("Push failed")
			}
			for range batch {
				if _, _, ok := s.Pop(0); !ok {
					t.Fatal("Pop failed")
				}
				s.Done(0)
			}
		})
		if allocs != 0 {
			t.Fatalf("kind %d: local Push/Pop/Done allocated %.1f times per op; the local deque path must not touch the heap", kind, allocs)
		}
	}
}
