package search

import (
	"sync"
	"sync/atomic"
)

// StealKind names the local pop policy of a sharded, work-stealing
// scheduler shard.
type StealKind uint8

// Steal kinds.
const (
	// StealLIFO: the owning worker pops newest-first (depth-first within
	// its own subtree); thieves steal oldest-first.
	StealLIFO StealKind = iota
	// StealRandom: the owning worker pops a uniformly random local item;
	// thieves still steal oldest-first.
	StealRandom
)

// Stealable marks strategies whose exploration order is insensitive to
// worker interleaving, so the engine may replace the single shared queue
// with per-worker deques and steal-half rebalancing. Order-sensitive
// policies (BFS, A*, SM-A*, External) must not implement it.
type Stealable interface {
	StealKind() StealKind
}

// shard is one worker-owned deque. Each has its own lock, so the only
// cross-worker contention is an actual steal. The padding keeps hot
// shards off each other's cache lines.
type shard[T any] struct {
	mu sync.Mutex // no_block: work-stealing hot path; holders only touch the slice and rng
	// guarded_by: mu
	items  []Item[T]
	victim int    // round-robin steal cursor; owner-confined, not lock-guarded
	rng    uint64 // guarded_by: mu — xorshift64* state for StealRandom local pops
	_      [64]byte
}

// Sharded distributes one logical work pool over per-worker deques for
// order-insensitive strategies: the owner pushes and pops at the tail
// (LIFO — the paper's default depth-first policy within each worker's
// subtree), while idle workers steal the older half of a victim's deque
// (FIFO — the shallowest items, which head the largest remaining
// subtrees, so one steal buys the thief the most private work).
//
// Termination uses a single task counter: an item is *pending* from the
// Push that enqueues it until the Done that retires it, so a worker that
// pops it and pushes its children raises the counter before lowering it.
// Quiescent is therefore one atomic load — zero means no queued items
// and no in-flight evaluation that could produce more — with none of the
// ordering windows a separate queued/busy pair would open.
//
// Sharded is not a Strategy: its operations are worker-addressed. All
// methods are safe for concurrent use.
type Sharded[T any] struct {
	shards []shard[T]
	kind   StealKind
	drop   func(Item[T]) // receives items discarded by Close (and steal-vs-Close losers)

	queued  atomic.Int64 // items sitting in deques (Len)
	pending atomic.Int64 // queued + popped-but-not-Done (termination)
	closed  atomic.Bool
}

// NewSharded returns a pool of `workers` deques. seed parameterizes the
// per-worker random streams under StealRandom (ignored for StealLIFO).
// drop, which may be nil, receives every item the pool discards when it
// is closed.
func NewSharded[T any](workers int, kind StealKind, seed uint64, drop func(Item[T])) *Sharded[T] {
	if workers < 1 {
		workers = 1
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	s := &Sharded[T]{shards: make([]shard[T], workers), kind: kind, drop: drop}
	for i := range s.shards {
		s.shards[i].victim = (i + 1) % workers
		// splitmix64 over the seed: decorrelated non-zero per-shard states.
		//lint:ignore lockguard the pool is not yet published to any worker
		s.shards[i].rng = splitmix64(seed+uint64(i+1)*0x9e3779b97f4a7c15) | 1
	}
	return s
}

// Workers returns the number of shards.
func (s *Sharded[T]) Workers() int { return len(s.shards) }

// Len returns the number of queued items across all shards.
func (s *Sharded[T]) Len() int { return int(s.queued.Load()) }

// Closed reports whether Close has run.
func (s *Sharded[T]) Closed() bool { return s.closed.Load() }

// Quiescent reports global termination: nothing queued and nothing
// popped-but-unfinished, so no future push can occur.
func (s *Sharded[T]) Quiescent() bool { return s.pending.Load() == 0 }

// Push appends worker w's sibling batch to its own deque, in reverse so
// the lowest Choice pops first under LIFO (matching DFS.PushAll). It
// returns false — without retaining anything — when the pool is closed;
// the caller still owns the items. A worker that pushes from inside an
// evaluation must do so before its Done, or Quiescent can fire early.
// hot_path: locks=mu one short critical section per sibling batch.
func (s *Sharded[T]) Push(w int, items []Item[T]) bool {
	if len(items) == 0 {
		return true
	}
	sh := &s.shards[w]
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return false
	}
	for i := len(items) - 1; i >= 0; i-- {
		//lint:ignore hotpath amortized growth: the deque doubles capacity, O(1)/push
		sh.items = append(sh.items, items[i])
	}
	s.queued.Add(int64(len(items)))
	s.pending.Add(int64(len(items)))
	sh.mu.Unlock()
	return true
}

// Pop takes the next item for worker w: its own deque first, then a
// steal sweep over the other shards. The item stays pending until the
// caller's Done, so every successful Pop must be paired with Done after
// the evaluation — and any pushes it performs — complete. stolen reports
// whether the item came from another worker's deque.
// hot_path: the local pop is the common case; a steal sweep is cheap.
func (s *Sharded[T]) Pop(w int) (it Item[T], stolen bool, ok bool) {
	if it, ok := s.popLocal(w); ok {
		return it, false, true
	}
	if it, ok := s.steal(w); ok {
		return it, true, true
	}
	var zero Item[T]
	return zero, false, false
}

// Done retires an item returned by a successful Pop.
// hot_path: one atomic decrement.
// inline:
func (s *Sharded[T]) Done(w int) { s.pending.Add(-1) }

// popLocal pops from w's own deque (newest-first, or uniformly random
// under StealRandom).
// hot_path: locks=mu a swap-and-truncate under the shard lock.
func (s *Sharded[T]) popLocal(w int) (Item[T], bool) {
	sh := &s.shards[w]
	sh.mu.Lock()
	n := len(sh.items)
	if n == 0 {
		sh.mu.Unlock()
		var zero Item[T]
		return zero, false
	}
	i := n - 1
	if s.kind == StealRandom {
		var out uint64
		sh.rng, out = xorshiftMul(sh.rng)
		i = int(out % uint64(n))
	}
	it := sh.items[i]
	sh.items[i] = sh.items[n-1]
	var zero Item[T]
	sh.items[n-1] = zero
	sh.items = sh.items[:n-1]
	s.queued.Add(-1)
	sh.mu.Unlock()
	return it, true
}

// steal sweeps the other shards round-robin from w's cursor, moving the
// older half of the first non-empty victim deque into w's own deque and
// returning the oldest item for immediate evaluation.
// cheap: locks=mu a steal happens only when the local deque is empty;
// banking the loot allocates by design.
func (s *Sharded[T]) steal(w int) (Item[T], bool) {
	var zero Item[T]
	n := len(s.shards)
	if n == 1 {
		return zero, false
	}
	me := &s.shards[w]
	v := me.victim
	for k := 0; k < n-1; k++ {
		if v == w {
			v = (v + 1) % n
		}
		loot := s.stealFrom(v)
		v = (v + 1) % n
		if len(loot) == 0 {
			continue
		}
		me.victim = v
		// Bank the surplus in our own deque. The closed check under our
		// lock mirrors Push: if Close already drained us, banked loot
		// would be stranded in a dead pool, so hand it to drop instead.
		me.mu.Lock()
		if s.closed.Load() {
			me.mu.Unlock()
			if s.drop != nil {
				for _, it := range loot {
					s.drop(it)
				}
			}
			s.queued.Add(-int64(len(loot)))
			s.pending.Add(-int64(len(loot)))
			return zero, false
		}
		me.items = append(me.items, loot[1:]...)
		s.queued.Add(-1) // only the returned item leaves the deques
		me.mu.Unlock()
		return loot[0], true
	}
	return zero, false
}

// stealFrom removes and returns the older half (rounded up) of shard v.
// The moved items stay counted in queued until re-banked or returned.
// cheap: locks=mu the loot slice allocates once per successful steal.
func (s *Sharded[T]) stealFrom(v int) []Item[T] {
	sh := &s.shards[v]
	sh.mu.Lock()
	n := len(sh.items)
	if n == 0 {
		sh.mu.Unlock()
		return nil
	}
	take := (n + 1) / 2
	loot := make([]Item[T], take)
	copy(loot, sh.items[:take])
	rest := copy(sh.items, sh.items[take:])
	for i := rest; i < n; i++ {
		var zero Item[T]
		sh.items[i] = zero
	}
	sh.items = sh.items[:rest]
	sh.mu.Unlock()
	return loot
}

// Close marks the pool stopped and drains every shard, passing each
// queued item to the drop callback. Pushes that lose the race return
// false and leave item ownership with the pusher. Idempotent.
func (s *Sharded[T]) Close() {
	if s.closed.Swap(true) {
		return
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		items := sh.items
		sh.items = nil
		sh.mu.Unlock()
		if s.drop != nil {
			for _, it := range items {
				s.drop(it)
			}
		}
		s.queued.Add(-int64(len(items)))
		s.pending.Add(-int64(len(items)))
	}
}
