package guest

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/vm"
)

// Assemble parses SVX64 assembly text into a Builder. Supported syntax:
//
//	; line comment (also #)
//	.text / .data            switch section
//	.quad v, v, ...          64-bit words
//	.byte v, v, ...          bytes
//	.space N                 N zero bytes
//	.asciz "s"               NUL-terminated string
//	.equ NAME, value         assembler constant
//	label:                   define label (may share a line with an op)
//	mov rax, 42              register/immediate/=label forms auto-detected
//	load rax, [rbx+8]        64-bit load;  loadb for bytes
//	store rax, [rbx+rcx*8]   64-bit store; indexed forms use loadx/storex
//	add/sub/and/or/xor/shl/shr/sar/mul rax, rbx|imm
//	div/mod rax, rbx         unsigned
//	cmp/test, jmp/je/jne/jl/jle/jg/jge/jb/jbe/ja/jae label
//	call label / ret / push r / pop r / syscall / hlt / nop
func Assemble(src string) (*Builder, error) {
	b := NewBuilder()
	consts := map[string]int64{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Peel off leading labels.
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				break
			}
			b.Label(name)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := asmLine(b, consts, line); err != nil {
			return nil, fmt.Errorf("asm line %d: %w", lineNo+1, err)
		}
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	return b, nil
}

// AssembleImage assembles src and links it at the default bases.
func AssembleImage(src string) (*Image, error) {
	b, err := Assemble(src)
	if err != nil {
		return nil, err
	}
	return b.Link(CodeBase, DataBase)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case i > 0 && c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return true
}

// splitOperands splits on commas that are not inside brackets.
func splitOperands(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, c := range s {
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if rest := strings.TrimSpace(s[start:]); rest != "" {
		out = append(out, rest)
	}
	return out
}

func parseInt(consts map[string]int64, s string) (int64, bool) {
	s = strings.TrimSpace(s)
	if v, ok := consts[s]; ok {
		return v, true
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 64)
	if err != nil {
		return 0, false
	}
	iv := int64(v)
	if neg {
		iv = -iv
	}
	return iv, true
}

// memRef is a parsed [base], [base+disp], [base+idx*scale(+disp)] operand.
type memRef struct {
	base  vm.Reg
	idx   vm.Reg
	scale uint8 // 0 means no index
	disp  int64
}

func parseMem(consts map[string]int64, s string) (memRef, error) {
	var m memRef
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return m, fmt.Errorf("bad memory operand %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	// Normalize "a - b" into "a + -b" then split on '+'.
	inner = strings.ReplaceAll(inner, "-", "+-")
	parts := strings.Split(inner, "+")
	seenBase := false
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if star := strings.Index(p, "*"); star >= 0 {
			rName := strings.TrimSpace(p[:star])
			r, ok := vm.RegByName(rName)
			if !ok {
				return m, fmt.Errorf("bad index register %q", rName)
			}
			sc, ok := parseInt(consts, p[star+1:])
			if !ok || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
				return m, fmt.Errorf("bad scale in %q", p)
			}
			m.idx, m.scale = r, uint8(sc)
			continue
		}
		if r, ok := vm.RegByName(p); ok {
			if !seenBase {
				m.base, seenBase = r, true
			} else if m.scale == 0 {
				m.idx, m.scale = r, 1 // [base+idx] form
			} else {
				return m, fmt.Errorf("too many registers in %q", s)
			}
			continue
		}
		if v, ok := parseInt(consts, p); ok {
			m.disp += v
			continue
		}
		return m, fmt.Errorf("bad memory term %q", p)
	}
	if !seenBase {
		return m, fmt.Errorf("memory operand %q lacks a base register", s)
	}
	return m, nil
}

func asmLine(b *Builder, consts map[string]int64, line string) error {
	mnem := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mnem = strings.ToLower(mnem)
	ops := splitOperands(rest)

	reg := func(i int) (vm.Reg, error) {
		r, ok := vm.RegByName(strings.ToLower(ops[i]))
		if !ok {
			return 0, fmt.Errorf("bad register %q", ops[i])
		}
		return r, nil
	}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s needs %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}

	// Directives.
	switch mnem {
	case ".text":
		b.Text()
		return nil
	case ".data":
		b.Data()
		return nil
	case ".space":
		if err := need(1); err != nil {
			return err
		}
		n, ok := parseInt(consts, ops[0])
		if !ok || n < 0 {
			return fmt.Errorf("bad .space size %q", ops[0])
		}
		b.Space(int(n))
		return nil
	case ".quad":
		for _, o := range ops {
			v, ok := parseInt(consts, o)
			if !ok {
				return fmt.Errorf("bad .quad value %q", o)
			}
			b.Quad(uint64(v))
		}
		return nil
	case ".byte":
		for _, o := range ops {
			v, ok := parseInt(consts, o)
			if !ok || v < -128 || v > 255 {
				return fmt.Errorf("bad .byte value %q", o)
			}
			b.Byte(byte(v))
		}
		return nil
	case ".asciz":
		if err := need(1); err != nil {
			return err
		}
		s, err := strconv.Unquote(ops[0])
		if err != nil {
			return fmt.Errorf("bad .asciz string: %v", err)
		}
		b.Asciz(s)
		return nil
	case ".equ":
		if err := need(2); err != nil {
			return err
		}
		v, ok := parseInt(consts, ops[1])
		if !ok {
			return fmt.Errorf("bad .equ value %q", ops[1])
		}
		consts[ops[0]] = v
		return nil
	}

	// Zero-operand instructions.
	switch mnem {
	case "ret":
		b.Ret()
		return nil
	case "syscall":
		b.Syscall()
		return nil
	case "hlt":
		b.Hlt()
		return nil
	case "nop":
		b.Nop()
		return nil
	}

	// Single-register instructions.
	switch mnem {
	case "neg", "not", "inc", "dec", "push", "pop":
		if err := need(1); err != nil {
			return err
		}
		r, err := reg(0)
		if err != nil {
			return err
		}
		switch mnem {
		case "neg":
			b.Neg(r)
		case "not":
			b.Not(r)
		case "inc":
			b.Inc(r)
		case "dec":
			b.Dec(r)
		case "push":
			b.Push(r)
		case "pop":
			b.Pop(r)
		}
		return nil
	}

	// Branches.
	branches := map[string]func(string) *Builder{
		"jmp": b.Jmp, "je": b.Je, "jne": b.Jne, "jl": b.Jl, "jle": b.Jle,
		"jg": b.Jg, "jge": b.Jge, "jb": b.Jb, "jbe": b.Jbe, "ja": b.Ja,
		"jae": b.Jae, "call": b.Call,
	}
	if fn, ok := branches[mnem]; ok {
		if err := need(1); err != nil {
			return err
		}
		if !isIdent(ops[0]) {
			return fmt.Errorf("bad branch target %q", ops[0])
		}
		fn(ops[0])
		return nil
	}

	// Memory ops: op reg, [mem]  (loads/lea)  or  op reg, [mem] (stores keep
	// the register first for symmetry: store src, [mem]).
	memOps := map[string]bool{"load": true, "loadb": true, "store": true, "storeb": true, "lea": true,
		"loadx": true, "storex": true, "loadbx": true, "storebx": true}
	if memOps[mnem] {
		if err := need(2); err != nil {
			return err
		}
		r, err := reg(0)
		if err != nil {
			return err
		}
		m, err := parseMem(consts, ops[1])
		if err != nil {
			return err
		}
		indexed := m.scale != 0
		switch {
		case mnem == "lea" && !indexed:
			b.Lea(r, m.base, m.disp)
		case mnem == "load" && indexed || mnem == "loadx":
			if !indexed {
				m.idx, m.scale = vm.RAX, 1
				return fmt.Errorf("loadx needs an indexed operand")
			}
			b.LoadX(r, m.base, m.idx, m.scale, m.disp)
		case mnem == "store" && indexed || mnem == "storex":
			if !indexed {
				return fmt.Errorf("storex needs an indexed operand")
			}
			b.StoreX(r, m.base, m.idx, m.scale, m.disp)
		case mnem == "loadb" && indexed || mnem == "loadbx":
			if !indexed {
				return fmt.Errorf("loadbx needs an indexed operand")
			}
			b.LoadBX(r, m.base, m.idx, m.scale, m.disp)
		case mnem == "storeb" && indexed || mnem == "storebx":
			if !indexed {
				return fmt.Errorf("storebx needs an indexed operand")
			}
			b.StoreBX(r, m.base, m.idx, m.scale, m.disp)
		case mnem == "load":
			b.Load(r, m.base, m.disp)
		case mnem == "store":
			b.Store(r, m.base, m.disp)
		case mnem == "loadb":
			b.LoadB(r, m.base, m.disp)
		case mnem == "storeb":
			b.StoreB(r, m.base, m.disp)
		default:
			return fmt.Errorf("%s with indexed operand not supported", mnem)
		}
		return nil
	}

	// Two-operand ALU / mov.
	type aluPair struct {
		rr func(a, b vm.Reg) *Builder
		ri func(a vm.Reg, imm int64) *Builder
	}
	alu := map[string]aluPair{
		"add": {b.Add, b.AddI}, "sub": {b.Sub, b.SubI}, "and": {b.And, b.AndI},
		"or": {b.Or, b.OrI}, "xor": {b.Xor, b.XorI}, "shl": {b.Shl, b.ShlI},
		"shr": {b.Shr, b.ShrI}, "sar": {b.Sar, b.SarI}, "mul": {b.Mul, b.MulI},
		"cmp": {b.Cmp, b.CmpI},
		"div": {b.Div, nil}, "mod": {b.Mod, nil}, "test": {b.Test, nil},
	}
	if mnem == "mov" {
		if err := need(2); err != nil {
			return err
		}
		dst, err := reg(0)
		if err != nil {
			return err
		}
		if src, ok := vm.RegByName(strings.ToLower(ops[1])); ok {
			b.Mov(dst, src)
			return nil
		}
		if strings.HasPrefix(ops[1], "=") {
			label := ops[1][1:]
			if !isIdent(label) {
				return fmt.Errorf("bad label reference %q", ops[1])
			}
			b.MovLabel(dst, label)
			return nil
		}
		v, ok := parseInt(consts, ops[1])
		if !ok {
			return fmt.Errorf("bad mov source %q", ops[1])
		}
		b.MovI(dst, uint64(v))
		return nil
	}
	if pair, ok := alu[mnem]; ok {
		if err := need(2); err != nil {
			return err
		}
		dst, err := reg(0)
		if err != nil {
			return err
		}
		if src, ok := vm.RegByName(strings.ToLower(ops[1])); ok {
			pair.rr(dst, src)
			return nil
		}
		if pair.ri == nil {
			return fmt.Errorf("%s does not take an immediate", mnem)
		}
		v, ok := parseInt(consts, ops[1])
		if !ok {
			return fmt.Errorf("bad %s operand %q", mnem, ops[1])
		}
		pair.ri(dst, v)
		return nil
	}
	return fmt.Errorf("unknown mnemonic %q", mnem)
}
