// Package guest builds and loads SVX64 programs: a programmatic assembler
// (Builder), a two-pass text assembler, and a loader that lays the linked
// image out in a fresh address space with the conventional W^X segment
// layout (code RX, data/heap/stack RW).
package guest

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/vm"
)

// Conventional virtual-memory layout for loaded guests.
const (
	// CodeBase is where the text segment is linked by default.
	CodeBase uint64 = 0x0000_0000_0040_0000
	// DataBase is where the data segment is linked by default.
	DataBase uint64 = 0x0000_0000_0080_0000
	// HeapBase is the initial program break.
	HeapBase uint64 = 0x0000_0000_1000_0000
	// StackTop is one past the highest stack address.
	StackTop uint64 = 0x0000_7fff_ff00_0000
	// DefaultStackSize is the stack reservation.
	DefaultStackSize uint64 = 1 << 20
)

// Segment is one mapped, initialized region of a program image.
type Segment struct {
	Addr uint64
	Data []byte
	Perm mem.Perm
	Name string
}

// Image is a linked program ready to load into an address space.
type Image struct {
	Entry    uint64
	Segments []Segment
}

// LoadOptions tunes Load.
type LoadOptions struct {
	StackSize uint64 // 0 means DefaultStackSize
	HeapPages uint64 // initially mapped heap pages (brk can grow more)
}

// Load maps img into a fresh address space drawn from alloc and returns the
// space plus the initial register file: RIP at the entry point, RSP at the
// top of the stack. The heap region is mapped at HeapBase and the break
// initialized so the brk syscall works out of the box.
func Load(img *Image, alloc *mem.FrameAllocator, opts LoadOptions) (*mem.AddressSpace, vm.Registers, error) {
	var regs vm.Registers
	as := mem.NewAddressSpace(alloc)
	for _, seg := range img.Segments {
		length := mem.PageCeil(uint64(len(seg.Data)))
		if length == 0 {
			continue
		}
		if err := as.Map(seg.Addr, length, seg.Perm, seg.Name); err != nil {
			as.Release()
			return nil, regs, fmt.Errorf("guest: load %s: %w", seg.Name, err)
		}
		if err := as.WriteForce(seg.Data, seg.Addr); err != nil {
			as.Release()
			return nil, regs, fmt.Errorf("guest: load %s: %w", seg.Name, err)
		}
	}
	heapPages := opts.HeapPages
	if heapPages == 0 {
		heapPages = 4
	}
	if err := as.Map(HeapBase, heapPages*mem.PageSize, mem.PermRW, "heap"); err != nil {
		as.Release()
		return nil, regs, err
	}
	as.InitBrk(HeapBase)
	stackSize := opts.StackSize
	if stackSize == 0 {
		stackSize = DefaultStackSize
	}
	if err := as.Map(StackTop-stackSize, stackSize, mem.PermRW, "stack"); err != nil {
		as.Release()
		return nil, regs, err
	}
	regs.RIP = img.Entry
	regs.Set(vm.RSP, StackTop)
	return as, regs, nil
}
