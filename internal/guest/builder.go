package guest

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/vm"
)

type section uint8

const (
	secText section = iota
	secData
)

type fixupKind uint8

const (
	fixRel32 fixupKind = iota // 4-byte PC-relative (jumps, calls)
	fixAbs64                  // 8-byte absolute address (MovLabel)
)

type fixup struct {
	sec   section
	off   int // operand offset within the section
	end   int // offset of the byte after the instruction (rel32 origin)
	label string
	kind  fixupKind
}

type symbol struct {
	sec section
	off int
}

// Builder assembles an SVX64 program: a text section, a data section, a
// symbol table, and fixups resolved at Link time. The zero value is not
// usable; call NewBuilder.
type Builder struct {
	text    []byte
	data    []byte
	cur     section
	symbols map[string]symbol
	fixups  []fixup
	errs    []error
}

// NewBuilder returns an empty program builder positioned in the text
// section.
func NewBuilder() *Builder {
	return &Builder{symbols: make(map[string]symbol)}
}

// Text switches emission to the text (code) section.
func (b *Builder) Text() *Builder { b.cur = secText; return b }

// Data switches emission to the data section.
func (b *Builder) Data() *Builder { b.cur = secData; return b }

func (b *Builder) buf() *[]byte {
	if b.cur == secText {
		return &b.text
	}
	return &b.data
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("guest: "+format, args...))
}

// Label defines name at the current position of the current section.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.symbols[name]; dup {
		b.errorf("duplicate label %q", name)
		return b
	}
	b.symbols[name] = symbol{sec: b.cur, off: len(*b.buf())}
	return b
}

// Pos returns the current offset within the current section.
func (b *Builder) Pos() int { return len(*b.buf()) }

func (b *Builder) emit(bytes ...byte) { *b.buf() = append(*b.buf(), bytes...) }

func (b *Builder) emitU32(v uint32) {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	b.emit(t[:]...)
}

func (b *Builder) emitU64(v uint64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	b.emit(t[:]...)
}

func (b *Builder) op(op vm.Opcode, rest ...byte) *Builder {
	if b.cur != secText {
		b.errorf("instruction %s emitted into data section", op)
	}
	b.emit(byte(op))
	b.emit(rest...)
	return b
}

func checkDisp(b *Builder, disp int64) uint32 {
	if disp > math.MaxInt32 || disp < math.MinInt32 {
		b.errorf("displacement %d out of int32 range", disp)
	}
	return uint32(int32(disp))
}

// ---- data directives ----

// Quad appends 64-bit little-endian words to the current section.
func (b *Builder) Quad(vals ...uint64) *Builder {
	for _, v := range vals {
		b.emitU64(v)
	}
	return b
}

// Byte appends raw bytes to the current section.
func (b *Builder) Byte(vals ...byte) *Builder { b.emit(vals...); return b }

// Space appends n zero bytes.
func (b *Builder) Space(n int) *Builder {
	*b.buf() = append(*b.buf(), make([]byte, n)...)
	return b
}

// Asciz appends a NUL-terminated string.
func (b *Builder) Asciz(s string) *Builder { b.emit([]byte(s)...); b.emit(0); return b }

// ---- instructions ----

// MovI sets dst to a 64-bit immediate.
func (b *Builder) MovI(dst vm.Reg, v uint64) *Builder {
	b.op(vm.OpMovRI, byte(dst))
	b.emitU64(v)
	return b
}

// MovLabel sets dst to the linked absolute address of label.
func (b *Builder) MovLabel(dst vm.Reg, label string) *Builder {
	b.op(vm.OpMovRI, byte(dst))
	b.fixups = append(b.fixups, fixup{sec: b.cur, off: len(b.text), label: label, kind: fixAbs64})
	b.emitU64(0)
	return b
}

// Mov copies src into dst.
func (b *Builder) Mov(dst, src vm.Reg) *Builder { return b.op(vm.OpMovRR, byte(dst), byte(src)) }

func (b *Builder) memOp(op vm.Opcode, r, base vm.Reg, disp int64) *Builder {
	b.op(op, byte(r), byte(base))
	b.emitU32(checkDisp(b, disp))
	return b
}

// Load loads a 64-bit word: dst = [base+disp].
func (b *Builder) Load(dst, base vm.Reg, disp int64) *Builder {
	return b.memOp(vm.OpLoad, dst, base, disp)
}

// Store stores a 64-bit word: [base+disp] = src.
func (b *Builder) Store(src, base vm.Reg, disp int64) *Builder {
	return b.memOp(vm.OpStore, src, base, disp)
}

// LoadB loads a zero-extended byte.
func (b *Builder) LoadB(dst, base vm.Reg, disp int64) *Builder {
	return b.memOp(vm.OpLoadB, dst, base, disp)
}

// StoreB stores the low byte of src.
func (b *Builder) StoreB(src, base vm.Reg, disp int64) *Builder {
	return b.memOp(vm.OpStorB, src, base, disp)
}

// Lea computes dst = base+disp without touching memory.
func (b *Builder) Lea(dst, base vm.Reg, disp int64) *Builder {
	return b.memOp(vm.OpLea, dst, base, disp)
}

func (b *Builder) idxOp(op vm.Opcode, r, base, idx vm.Reg, scale uint8, disp int64) *Builder {
	switch scale {
	case 1, 2, 4, 8:
	default:
		b.errorf("scale %d not in {1,2,4,8}", scale)
	}
	b.op(op, byte(r), byte(base), byte(idx), scale)
	b.emitU32(checkDisp(b, disp))
	return b
}

// LoadX loads dst = [base + idx*scale + disp].
func (b *Builder) LoadX(dst, base, idx vm.Reg, scale uint8, disp int64) *Builder {
	return b.idxOp(vm.OpLoadX, dst, base, idx, scale, disp)
}

// StoreX stores [base + idx*scale + disp] = src.
func (b *Builder) StoreX(src, base, idx vm.Reg, scale uint8, disp int64) *Builder {
	return b.idxOp(vm.OpStorX, src, base, idx, scale, disp)
}

// LoadBX loads a byte with indexed addressing.
func (b *Builder) LoadBX(dst, base, idx vm.Reg, scale uint8, disp int64) *Builder {
	return b.idxOp(vm.OpLoadBX, dst, base, idx, scale, disp)
}

// StoreBX stores a byte with indexed addressing.
func (b *Builder) StoreBX(src, base, idx vm.Reg, scale uint8, disp int64) *Builder {
	return b.idxOp(vm.OpStorBX, src, base, idx, scale, disp)
}

func (b *Builder) aluRR(op vm.Opcode, dst, src vm.Reg) *Builder {
	return b.op(op, byte(dst), byte(src))
}

func (b *Builder) aluRI(op vm.Opcode, dst vm.Reg, imm int64) *Builder {
	b.op(op, byte(dst))
	b.emitU32(checkDisp(b, imm))
	return b
}

// Arithmetic and logic; the I suffix takes a sign-extended 32-bit immediate.

func (b *Builder) Add(dst, src vm.Reg) *Builder        { return b.aluRR(vm.OpAddRR, dst, src) }
func (b *Builder) AddI(dst vm.Reg, imm int64) *Builder { return b.aluRI(vm.OpAddRI, dst, imm) }
func (b *Builder) Sub(dst, src vm.Reg) *Builder        { return b.aluRR(vm.OpSubRR, dst, src) }
func (b *Builder) SubI(dst vm.Reg, imm int64) *Builder { return b.aluRI(vm.OpSubRI, dst, imm) }
func (b *Builder) And(dst, src vm.Reg) *Builder        { return b.aluRR(vm.OpAndRR, dst, src) }
func (b *Builder) AndI(dst vm.Reg, imm int64) *Builder { return b.aluRI(vm.OpAndRI, dst, imm) }
func (b *Builder) Or(dst, src vm.Reg) *Builder         { return b.aluRR(vm.OpOrRR, dst, src) }
func (b *Builder) OrI(dst vm.Reg, imm int64) *Builder  { return b.aluRI(vm.OpOrRI, dst, imm) }
func (b *Builder) Xor(dst, src vm.Reg) *Builder        { return b.aluRR(vm.OpXorRR, dst, src) }
func (b *Builder) XorI(dst vm.Reg, imm int64) *Builder { return b.aluRI(vm.OpXorRI, dst, imm) }
func (b *Builder) Shl(dst, src vm.Reg) *Builder        { return b.aluRR(vm.OpShlRR, dst, src) }
func (b *Builder) ShlI(dst vm.Reg, imm int64) *Builder { return b.aluRI(vm.OpShlRI, dst, imm) }
func (b *Builder) Shr(dst, src vm.Reg) *Builder        { return b.aluRR(vm.OpShrRR, dst, src) }
func (b *Builder) ShrI(dst vm.Reg, imm int64) *Builder { return b.aluRI(vm.OpShrRI, dst, imm) }
func (b *Builder) Sar(dst, src vm.Reg) *Builder        { return b.aluRR(vm.OpSarRR, dst, src) }
func (b *Builder) SarI(dst vm.Reg, imm int64) *Builder { return b.aluRI(vm.OpSarRI, dst, imm) }
func (b *Builder) Mul(dst, src vm.Reg) *Builder        { return b.aluRR(vm.OpMulRR, dst, src) }
func (b *Builder) MulI(dst vm.Reg, imm int64) *Builder { return b.aluRI(vm.OpMulRI, dst, imm) }
func (b *Builder) Div(dst, src vm.Reg) *Builder        { return b.aluRR(vm.OpDivRR, dst, src) }
func (b *Builder) Mod(dst, src vm.Reg) *Builder        { return b.aluRR(vm.OpModRR, dst, src) }
func (b *Builder) Neg(r vm.Reg) *Builder               { return b.op(vm.OpNeg, byte(r)) }
func (b *Builder) Not(r vm.Reg) *Builder               { return b.op(vm.OpNot, byte(r)) }
func (b *Builder) Inc(r vm.Reg) *Builder               { return b.op(vm.OpInc, byte(r)) }
func (b *Builder) Dec(r vm.Reg) *Builder               { return b.op(vm.OpDec, byte(r)) }

func (b *Builder) Cmp(a, c vm.Reg) *Builder          { return b.aluRR(vm.OpCmpRR, a, c) }
func (b *Builder) CmpI(a vm.Reg, imm int64) *Builder { return b.aluRI(vm.OpCmpRI, a, imm) }
func (b *Builder) Test(a, c vm.Reg) *Builder         { return b.aluRR(vm.OpTestRR, a, c) }

func (b *Builder) rel(op vm.Opcode, label string) *Builder {
	b.op(op)
	b.fixups = append(b.fixups, fixup{sec: secText, off: len(b.text), end: len(b.text) + 4, label: label, kind: fixRel32})
	b.emitU32(0)
	return b
}

// Control flow to labels.

func (b *Builder) Jmp(label string) *Builder  { return b.rel(vm.OpJmp, label) }
func (b *Builder) Je(label string) *Builder   { return b.rel(vm.OpJe, label) }
func (b *Builder) Jne(label string) *Builder  { return b.rel(vm.OpJne, label) }
func (b *Builder) Jl(label string) *Builder   { return b.rel(vm.OpJl, label) }
func (b *Builder) Jle(label string) *Builder  { return b.rel(vm.OpJle, label) }
func (b *Builder) Jg(label string) *Builder   { return b.rel(vm.OpJg, label) }
func (b *Builder) Jge(label string) *Builder  { return b.rel(vm.OpJge, label) }
func (b *Builder) Jb(label string) *Builder   { return b.rel(vm.OpJb, label) }
func (b *Builder) Jbe(label string) *Builder  { return b.rel(vm.OpJbe, label) }
func (b *Builder) Ja(label string) *Builder   { return b.rel(vm.OpJa, label) }
func (b *Builder) Jae(label string) *Builder  { return b.rel(vm.OpJae, label) }
func (b *Builder) Call(label string) *Builder { return b.rel(vm.OpCall, label) }

func (b *Builder) Ret() *Builder          { return b.op(vm.OpRet) }
func (b *Builder) Push(r vm.Reg) *Builder { return b.op(vm.OpPush, byte(r)) }
func (b *Builder) Pop(r vm.Reg) *Builder  { return b.op(vm.OpPop, byte(r)) }
func (b *Builder) Syscall() *Builder      { return b.op(vm.OpSyscall) }
func (b *Builder) Hlt() *Builder          { return b.op(vm.OpHlt) }
func (b *Builder) Nop() *Builder          { return b.op(vm.OpNop) }

// Link resolves all fixups against the given section bases and returns the
// loadable image. The entry point is the label "_start" if defined,
// otherwise the first text byte.
func (b *Builder) Link(codeBase, dataBase uint64) (*Image, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	addrOf := func(s symbol) uint64 {
		if s.sec == secText {
			return codeBase + uint64(s.off)
		}
		return dataBase + uint64(s.off)
	}
	for _, f := range b.fixups {
		sym, ok := b.symbols[f.label]
		if !ok {
			return nil, fmt.Errorf("guest: undefined label %q", f.label)
		}
		target := addrOf(sym)
		switch f.kind {
		case fixRel32:
			origin := codeBase + uint64(f.end)
			delta := int64(target) - int64(origin)
			if delta > math.MaxInt32 || delta < math.MinInt32 {
				return nil, fmt.Errorf("guest: branch to %q out of rel32 range", f.label)
			}
			binary.LittleEndian.PutUint32(b.text[f.off:], uint32(int32(delta)))
		case fixAbs64:
			buf := b.text
			if f.sec == secData {
				buf = b.data
			}
			binary.LittleEndian.PutUint64(buf[f.off:], target)
		}
	}
	entry := codeBase
	if s, ok := b.symbols["_start"]; ok {
		entry = addrOf(s)
	}
	img := &Image{Entry: entry}
	if len(b.text) > 0 {
		img.Segments = append(img.Segments, Segment{Addr: codeBase, Data: b.text, Perm: mem.PermRX, Name: "text"})
	}
	if len(b.data) > 0 {
		img.Segments = append(img.Segments, Segment{Addr: dataBase, Data: b.data, Perm: mem.PermRW, Name: "data"})
	}
	return img, nil
}

// MustLink is Link with the default bases, panicking on error (tests and
// examples).
func (b *Builder) MustLink() *Image {
	img, err := b.Link(CodeBase, DataBase)
	if err != nil {
		panic(err)
	}
	return img
}
