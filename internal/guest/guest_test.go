package guest_test

import (
	"math/rand"
	"testing"

	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/vm"
)

func runImage(t *testing.T, img *guest.Image, fuel int64) (*vm.CPU, *vm.Trap) {
	t.Helper()
	as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	cpu := vm.New(as)
	cpu.Regs = regs
	return cpu, cpu.Run(fuel)
}

func TestAssembleBasicProgram(t *testing.T) {
	img, err := guest.AssembleImage(`
; sum 1..10
_start:
    mov rax, 0
    mov rcx, 10
loop:
    add rax, rcx
    dec rcx
    cmp rcx, 0
    jne loop
    hlt
`)
	if err != nil {
		t.Fatalf("AssembleImage: %v", err)
	}
	cpu, trap := runImage(t, img, 0)
	if trap.Kind != vm.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if got := cpu.Regs.Get(vm.RAX); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestAssembleDataAndMemory(t *testing.T) {
	img, err := guest.AssembleImage(`
.equ N, 3
.data
table:
    .quad 100, 200, 300
msg:
    .asciz "hi"
buf:
    .space 16
.text
_start:
    mov rsi, =table
    mov rcx, 0
    mov rax, 0
sum:
    loadx rbx, [rsi + rcx*8]
    add rax, rbx
    inc rcx
    cmp rcx, N
    jl sum
    mov rdi, =msg
    loadb rdx, [rdi+1]     ; 'i' = 105
    mov r8, =buf
    store rax, [r8]
    load r9, [r8+0]
    hlt
`)
	if err != nil {
		t.Fatalf("AssembleImage: %v", err)
	}
	cpu, trap := runImage(t, img, 0)
	if trap.Kind != vm.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if got := cpu.Regs.Get(vm.RAX); got != 600 {
		t.Errorf("sum = %d, want 600", got)
	}
	if got := cpu.Regs.Get(vm.RDX); got != 'i' {
		t.Errorf("byte = %d, want 'i'", got)
	}
	if got := cpu.Regs.Get(vm.R9); got != 600 {
		t.Errorf("store/load via =buf = %d", got)
	}
}

func TestAssembleCallAndStack(t *testing.T) {
	img, err := guest.AssembleImage(`
_start:
    mov rdi, 6
    call fact
    hlt
fact:                      ; rax = rdi!
    mov rax, 1
f_loop:
    cmp rdi, 1
    jle f_done
    mul rax, rdi
    dec rdi
    jmp f_loop
f_done:
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	cpu, trap := runImage(t, img, 0)
	if trap.Kind != vm.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if got := cpu.Regs.Get(vm.RAX); got != 720 {
		t.Errorf("6! = %d, want 720", got)
	}
}

func TestAssembleNegativeDisp(t *testing.T) {
	img, err := guest.AssembleImage(`
.data
    .quad 7
anchor:
    .quad 9
.text
_start:
    mov rbx, =anchor
    load rax, [rbx-8]      ; the 7 before anchor
    hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	cpu, trap := runImage(t, img, 0)
	if trap.Kind != vm.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if got := cpu.Regs.Get(vm.RAX); got != 7 {
		t.Errorf("load [rbx-8] = %d, want 7", got)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"undefined-label":  "_start:\n  jmp nowhere\n  hlt",
		"bad-register":     "_start:\n  mov rqq, 1",
		"bad-mnemonic":     "_start:\n  frobnicate rax",
		"bad-mem":          "_start:\n  load rax, [5]",
		"bad-scale":        "_start:\n  loadx rax, [rbx+rcx*3]",
		"dup-label":        "a:\na:\n  hlt",
		"imm-div":          "_start:\n  div rax, 3",
		"operand-count":    "_start:\n  mov rax",
		"data-instruction": ".data\n  mov rax, 1",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := guest.AssembleImage(src); err == nil {
				t.Errorf("assembling %q succeeded, want error", name)
			}
		})
	}
}

func TestBuilderLinkErrors(t *testing.T) {
	b := guest.NewBuilder()
	b.Label("_start").Jmp("missing")
	if _, err := b.Link(guest.CodeBase, guest.DataBase); err == nil {
		t.Error("link with undefined label succeeded")
	}
}

func TestLoaderLayout(t *testing.T) {
	b := guest.NewBuilder()
	b.Label("_start").Hlt()
	b.Data().Label("d").Quad(1)
	img := b.MustLink()
	as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{HeapPages: 2, StackSize: 2 * mem.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	defer as.Release()
	if regs.RIP != guest.CodeBase {
		t.Errorf("entry = %#x", regs.RIP)
	}
	if regs.Get(vm.RSP) != guest.StackTop {
		t.Errorf("rsp = %#x", regs.Get(vm.RSP))
	}
	names := map[string]bool{}
	for _, v := range as.VMAs() {
		names[v.Name] = true
		if v.Name == "text" && v.Perm.Can(mem.PermWrite) {
			t.Error("text segment is writable (W^X violated)")
		}
	}
	for _, want := range []string{"text", "data", "heap", "stack"} {
		if !names[want] {
			t.Errorf("missing VMA %q", want)
		}
	}
	if b, _ := as.Brk(0); b != guest.HeapBase {
		t.Errorf("initial brk = %#x", b)
	}
}

// TestQuickALUAgainstGo cross-checks random ALU instruction sequences
// against direct Go evaluation.
func TestQuickALUAgainstGo(t *testing.T) {
	type opCase struct {
		name string
		emit func(b *guest.Builder, dst, src vm.Reg)
		eval func(a, c uint64) uint64
	}
	ops := []opCase{
		{"add", func(b *guest.Builder, d, s vm.Reg) { b.Add(d, s) }, func(a, c uint64) uint64 { return a + c }},
		{"sub", func(b *guest.Builder, d, s vm.Reg) { b.Sub(d, s) }, func(a, c uint64) uint64 { return a - c }},
		{"and", func(b *guest.Builder, d, s vm.Reg) { b.And(d, s) }, func(a, c uint64) uint64 { return a & c }},
		{"or", func(b *guest.Builder, d, s vm.Reg) { b.Or(d, s) }, func(a, c uint64) uint64 { return a | c }},
		{"xor", func(b *guest.Builder, d, s vm.Reg) { b.Xor(d, s) }, func(a, c uint64) uint64 { return a ^ c }},
		{"mul", func(b *guest.Builder, d, s vm.Reg) { b.Mul(d, s) }, func(a, c uint64) uint64 { return a * c }},
		{"shl", func(b *guest.Builder, d, s vm.Reg) { b.Shl(d, s) }, func(a, c uint64) uint64 { return a << (c & 63) }},
		{"shr", func(b *guest.Builder, d, s vm.Reg) { b.Shr(d, s) }, func(a, c uint64) uint64 { return a >> (c & 63) }},
		{"sar", func(b *guest.Builder, d, s vm.Reg) { b.Sar(d, s) }, func(a, c uint64) uint64 { return uint64(int64(a) >> (c & 63)) }},
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := guest.NewBuilder()
		b.Label("_start")
		a, c := rng.Uint64(), rng.Uint64()
		b.MovI(vm.RAX, a).MovI(vm.RBX, c)
		want := a
		steps := rng.Intn(8) + 1
		chosen := make([]string, 0, steps)
		for i := 0; i < steps; i++ {
			op := ops[rng.Intn(len(ops))]
			op.emit(b, vm.RAX, vm.RBX)
			want = op.eval(want, c)
			chosen = append(chosen, op.name)
		}
		b.Hlt()
		cpu, trap := runImage(t, b.MustLink(), 0)
		if trap.Kind != vm.TrapHalt {
			t.Fatalf("trial %d (%v): trap = %v", trial, chosen, trap)
		}
		if got := cpu.Regs.Get(vm.RAX); got != want {
			t.Fatalf("trial %d (%v) a=%#x b=%#x: got %#x, want %#x", trial, chosen, a, c, got, want)
		}
	}
}

// TestLoadExecOnlySegment is the loader regression for WriteForce: an
// image whose text segment carries --x (no read bit) must still load and
// run — the loader path may not require guest readability.
func TestLoadExecOnlySegment(t *testing.T) {
	b := guest.NewBuilder()
	b.Label("_start")
	b.MovI(vm.RAX, 7)
	b.Hlt()
	img := b.MustLink()
	for i := range img.Segments {
		if img.Segments[i].Name == "text" {
			img.Segments[i].Perm = mem.PermExec
		}
	}
	as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
	if err != nil {
		t.Fatalf("Load of exec-only image: %v", err)
	}
	defer as.Release()
	cpu := vm.New(as)
	cpu.Regs = regs
	if trap := cpu.Run(0); trap.Kind != vm.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if got := cpu.Regs.Get(vm.RAX); got != 7 {
		t.Errorf("rax = %d, want 7", got)
	}
	// The exec-only text stays unreadable to guest loads.
	var buf [1]byte
	if rerr := as.ReadAt(buf[:], guest.CodeBase); rerr == nil {
		t.Error("guest read of exec-only text succeeded")
	}
}
