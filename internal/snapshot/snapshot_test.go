package snapshot

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/vm"
)

func newCtx(t testing.TB, alloc *mem.FrameAllocator) *Context {
	t.Helper()
	as := mem.NewAddressSpace(alloc)
	if err := as.Map(0x10000, 64*mem.PageSize, mem.PermRW, "data"); err != nil {
		t.Fatal(err)
	}
	return &Context{Mem: as, FS: fs.New()}
}

func TestCaptureRestoreIsolation(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	tree := NewTree()
	ctx := newCtx(t, alloc)
	defer ctx.Release()

	ctx.Regs.Set(vm.RAX, 42)
	ctx.Out = append(ctx.Out, []byte("partial ")...)
	if err := ctx.Mem.WriteU64(0x10000, 7); err != nil {
		t.Fatal(err)
	}
	ctx.FS.WriteFile("/state", []byte("v1"))

	snap := tree.Capture(ctx, nil)
	defer snap.Release()

	// Mutate the live context after capture.
	ctx.Regs.Set(vm.RAX, 99)
	ctx.Out = append(ctx.Out, []byte("more")...)
	ctx.Mem.WriteU64(0x10000, 8)
	ctx.FS.WriteFile("/state", []byte("v2"))

	// Restore and verify every component was frozen.
	re := snap.Restore()
	defer re.Release()
	if got := re.Regs.Get(vm.RAX); got != 42 {
		t.Errorf("restored rax = %d, want 42", got)
	}
	if string(re.Out) != "partial " {
		t.Errorf("restored out = %q", re.Out)
	}
	if v, _ := re.Mem.ReadU64(0x10000); v != 7 {
		t.Errorf("restored mem = %d, want 7", v)
	}
	if b, _ := re.FS.ReadFile("/state"); string(b) != "v1" {
		t.Errorf("restored file = %q, want v1", b)
	}
	// Restored context is itself isolated from the snapshot.
	re.Mem.WriteU64(0x10000, 100)
	re2 := snap.Restore()
	defer re2.Release()
	if v, _ := re2.Mem.ReadU64(0x10000); v != 7 {
		t.Errorf("second restore sees first restore's write: %d", v)
	}
}

func TestSnapshotTreeParents(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	tree := NewTree()
	ctx := newCtx(t, alloc)
	defer ctx.Release()

	root := tree.Capture(ctx, nil)
	ctx.Mem.WriteU64(0x10000, 1)
	child := tree.Capture(ctx, root)
	ctx.Mem.WriteU64(0x10008, 2)
	grand := tree.Capture(ctx, child)

	if root.Depth() != 0 || child.Depth() != 1 || grand.Depth() != 2 {
		t.Errorf("depths = %d,%d,%d", root.Depth(), child.Depth(), grand.Depth())
	}
	if grand.Parent() != child || child.Parent() != root || root.Parent() != nil {
		t.Error("parent links broken")
	}
	if root.ID() == child.ID() || child.ID() == grand.ID() {
		t.Error("ids not unique")
	}
	if tree.Live() != 3 || tree.Created() != 3 {
		t.Errorf("live=%d created=%d", tree.Live(), tree.Created())
	}
	// Releasing the externally held refs: parent chain keeps ancestors
	// alive until the last descendant goes.
	root.Release()
	child.Release()
	if tree.Live() != 3 {
		t.Errorf("live after releasing held refs = %d, want 3 (chain alive)", tree.Live())
	}
	grand.Release()
	if tree.Live() != 0 {
		t.Errorf("live after final release = %d, want 0", tree.Live())
	}
}

func TestDeepChainReleaseIterative(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	tree := NewTree()
	ctx := newCtx(t, alloc)
	defer ctx.Release()

	const depth = 100_000
	var prev *State
	for i := 0; i < depth; i++ {
		s := tree.Capture(ctx, prev)
		if prev != nil {
			prev.Release() // chain holds it
		}
		prev = s
	}
	if tree.Live() != depth {
		t.Fatalf("live = %d", tree.Live())
	}
	// Must not overflow the stack.
	prev.Release()
	if tree.Live() != 0 {
		t.Errorf("live after chain release = %d", tree.Live())
	}
}

func TestSharingFootprint(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	tree := NewTree()
	ctx := newCtx(t, alloc)
	defer ctx.Release()
	for i := uint64(0); i < 32; i++ {
		if err := ctx.Mem.WriteU64(0x10000+i*mem.PageSize, i); err != nil {
			t.Fatal(err)
		}
	}
	snap := tree.Capture(ctx, nil)
	defer snap.Release()
	re := snap.Restore()
	defer re.Release()
	for i := uint64(0); i < 4; i++ {
		re.Mem.WriteU64(0x10000+i*mem.PageSize, 100+i)
	}
	fp := re.Mem.Footprint()
	if fp.PrivatePages != 4 || fp.SharedPages != 28 {
		t.Errorf("footprint = %+v, want 4 private / 28 shared", fp)
	}
	// Frames: 32 original + 4 CoW copies.
	if live := alloc.Live(); live != 36 {
		t.Errorf("live frames = %d, want 36", live)
	}
}

func TestCaptureIsCheapForLargeSpaces(t *testing.T) {
	// Not a timing assertion — an allocation-shape assertion: capturing a
	// snapshot of a space with many resident pages must not allocate frames.
	alloc := mem.NewFrameAllocator(0)
	tree := NewTree()
	ctx := newCtx(t, alloc)
	defer ctx.Release()
	for i := uint64(0); i < 64; i++ {
		ctx.Mem.WriteU64(0x10000+i*mem.PageSize, i)
	}
	before := alloc.Total()
	snaps := make([]*State, 100)
	for i := range snaps {
		snaps[i] = tree.Capture(ctx, nil)
	}
	if got := alloc.Total() - before; got != 0 {
		t.Errorf("capture allocated %d frames, want 0", got)
	}
	for _, s := range snaps {
		s.Release()
	}
}

func TestOutBufferNotAliased(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	tree := NewTree()
	ctx := newCtx(t, alloc)
	defer ctx.Release()
	ctx.Out = append(ctx.Out, 'a')
	snap := tree.Capture(ctx, nil)
	defer snap.Release()
	ctx.Out[0] = 'z'
	if snap.Out()[0] != 'a' {
		t.Error("snapshot output aliases live context buffer")
	}
	re := snap.Restore()
	defer re.Release()
	re.Out[0] = 'q'
	if snap.Out()[0] != 'a' {
		t.Error("restore output aliases snapshot buffer")
	}
}

// mustPanic runs fn and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want panic containing %q", want)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
			t.Fatalf("panic = %q, want it to contain %q", msg, want)
		}
	}()
	fn()
}

func TestDoubleReleasePanics(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	tree := NewTree()
	ctx := newCtx(t, alloc)
	defer ctx.Release()
	snap := tree.Capture(ctx, nil)
	id := snap.ID()
	snap.Release()
	mustPanic(t, fmt.Sprintf("double release of state %d", id), snap.Release)
	// Accounting must not have gone negative behind the panic.
	if tree.Live() != 0 {
		t.Errorf("live = %d after double release, want 0", tree.Live())
	}
}

func TestRetainAfterFreePanics(t *testing.T) {
	alloc := mem.NewFrameAllocator(0)
	tree := NewTree()
	ctx := newCtx(t, alloc)
	defer ctx.Release()
	snap := tree.Capture(ctx, nil)
	id := snap.ID()
	snap.Release()
	mustPanic(t, fmt.Sprintf("retain after free of state %d", id), func() { snap.Retain() })
}
