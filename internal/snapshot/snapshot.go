// Package snapshot implements the paper's primary abstraction: the
// lightweight immutable execution snapshot — a copy of the register file
// plus immutable logical copies of the address space, the filesystem, and
// the output stream, linked into a refcounted tree of partial candidates.
//
// Creation cost is O(1) in the size of the address space (the page-table
// root is shared and frozen); restoration is likewise O(1) and returns a
// mutable Context whose writes copy-on-write away from the snapshot. The
// parent relationship encodes candidates space-efficiently: a child
// physically shares every page it did not touch with its ancestors.
package snapshot

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/fs"
	"repro/internal/mem"
	"repro/internal/vm"
)

// Context is the mutable execution state of one candidate extension step:
// what the libOS hands to a virtual CPU (or hosted step function) when it
// schedules an extension for evaluation.
type Context struct {
	Mem  *mem.AddressSpace
	FS   *fs.FS
	Regs vm.Registers
	Out  []byte // captured stdout/stderr of this path
}

// Release frees the context's resources.
func (c *Context) Release() {
	if c.Mem != nil {
		c.Mem.Release()
		c.Mem = nil
	}
	if c.FS != nil {
		c.FS.Release()
		c.FS = nil
	}
}

// stateSeq issues process-global snapshot sequence numbers. Unlike the
// tree-local id, a seq is never reused within the process — not even
// across trees — so a cache that outlives one tree (the store's page-hash
// cache outlives a service's tree) can key on it without ever confusing
// two states.
var stateSeq atomic.Uint64

// State is one partial candidate: a lightweight immutable snapshot.
// All fields are frozen after capture. States are reference counted; the
// holder of the last reference releases the underlying memory and files.
type State struct {
	id     uint64
	seq    uint64
	depth  int
	parent *State
	tree   *Tree
	refs   atomic.Int32

	mem  *mem.AddressSpace // frozen CoW view (owned)
	fsys *fs.Snapshot      // frozen file image (owned)
	regs vm.Registers
	out  []byte // output captured up to the snapshot point
}

// ID returns the snapshot's unique id within its tree.
func (s *State) ID() uint64 { return s.id }

// Seq returns the snapshot's process-global sequence number: unique and
// never reused across every tree in this process. ID is the tree-scoped
// identity; Seq is for process-lifetime caches keyed by state.
func (s *State) Seq() uint64 { return s.seq }

// Depth returns the distance from the root candidate.
func (s *State) Depth() int { return s.depth }

// Parent returns the parent candidate (nil for the root).
func (s *State) Parent() *State { return s.parent }

// Regs returns the frozen register file.
func (s *State) Regs() vm.Registers { return s.regs }

// Out returns the frozen output buffer. Callers must not modify it.
func (s *State) Out() []byte { return s.out }

// FS returns the frozen file image. Callers must not mutate it.
func (s *State) FS() *fs.Snapshot { return s.fsys }

// Footprint reports page-level residency and sharing of this snapshot.
func (s *State) Footprint() mem.Footprint { return s.mem.Footprint() }

// Mem exposes the frozen address space for read-only inspection (solution
// extraction, checkpoint baselines). Callers must not write through it.
func (s *State) Mem() *mem.AddressSpace { return s.mem }

// Retain adds a reference. Retaining a snapshot whose count already hit
// zero is a use-after-free — the backing pages and file blocks may already
// be recycled — so it panics instead of resurrecting the state.
//
// hot_path: one atomic increment on the lookup hit path.
func (s *State) Retain() *State {
	if s.refs.Add(1) <= 1 {
		//lint:ignore hotpath panic message construction on the failure path only
		panic(fmt.Sprintf("snapshot: retain after free of state %d", s.id))
	}
	return s
}

// Release drops a reference; the last release frees the snapshot and drops
// its reference on the parent. Chains release iteratively so very deep
// snapshot trees (E8) cannot overflow the Go stack. A release that drives
// the count negative is a double-release: it panics with the state id
// rather than silently corrupting the tree's live accounting (and
// potentially freeing a snapshot still held elsewhere).
func (s *State) Release() {
	for s != nil {
		n := s.refs.Add(-1)
		if n > 0 {
			return
		}
		if n < 0 {
			panic(fmt.Sprintf("snapshot: double release of state %d", s.id))
		}
		s.mem.Release()
		s.fsys.Release()
		s.tree.live.Add(-1)
		next := s.parent
		s.parent = nil
		s = next
	}
}

// Restore materializes a fresh mutable Context whose initial state is
// exactly this snapshot. O(1) in the address-space size.
func (s *State) Restore() *Context {
	out := make([]byte, len(s.out))
	copy(out, s.out)
	return &Context{
		Mem:  s.mem.Fork(),
		FS:   s.fsys.Materialize(),
		Regs: s.regs,
		Out:  out,
	}
}

// Tree tracks snapshot identity and liveness statistics for one search.
type Tree struct {
	nextID    atomic.Uint64
	live      atomic.Int64
	created   atomic.Int64
	captureNs atomic.Int64 // cumulative wall time spent inside Capture
}

// NewTree returns an empty snapshot tree.
func NewTree() *Tree { return &Tree{} }

// Capture snapshots ctx into a new state whose parent is parent (which may
// be nil for the root). The parent gains a reference; the returned snapshot
// has one reference owned by the caller. ctx remains usable and mutable —
// its future writes copy-on-write away from the captured state.
//
// Capture never stops the mutator: the cost is an O(1) fork plus a
// snapshot-epoch bump on ctx.Mem, independent of the resident-set size,
// and the returned State is immediately usable for Restore and inspection.
// Sharing settles lazily — only the pages ctx actually writes afterwards
// take a CoW fault, one per page per epoch.
func (t *Tree) Capture(ctx *Context, parent *State) *State {
	return t.CaptureAtDepth(ctx, parent, 0)
}

// CaptureAtDepth is Capture for re-adopted snapshots: when parent is nil,
// the new state's depth is set to depth instead of 0. The persistence tier
// uses it to rebuild a demoted candidate whose ancestry lives on disk —
// the parent link is gone (its chain may not be resident), but the depth
// the manifest recorded survives for strategies and diagnostics. With a
// non-nil parent, depth is ignored and the child sits at parent.depth+1.
func (t *Tree) CaptureAtDepth(ctx *Context, parent *State, depth int) *State {
	start := time.Now()
	out := make([]byte, len(ctx.Out))
	copy(out, ctx.Out)
	frozen := ctx.Mem.Fork()
	// A captured space is shared across goroutines (restores fork it,
	// inspectors read it concurrently); sealing switches its reads onto
	// the lock-free shared cache so those accesses never race, while
	// ctx.Mem keeps its own TLB live and merely enters a new epoch.
	frozen.Seal()
	s := &State{
		id:     t.nextID.Add(1),
		seq:    stateSeq.Add(1),
		depth:  depth,
		tree:   t,
		parent: parent,
		mem:    frozen,
		fsys:   ctx.FS.Snapshot(),
		regs:   ctx.Regs,
		out:    out,
	}
	if parent != nil {
		parent.Retain()
		s.depth = parent.depth + 1
	}
	s.refs.Store(1)
	t.live.Add(1)
	t.created.Add(1)
	t.captureNs.Add(time.Since(start).Nanoseconds())
	return s
}

// Live returns the number of live snapshots.
func (t *Tree) Live() int64 { return t.live.Load() }

// Created returns the cumulative number of snapshots captured.
func (t *Tree) Created() int64 { return t.created.Load() }

// CaptureNs returns the cumulative wall-clock nanoseconds spent capturing
// snapshots on this tree — the capture-stall budget the epoch protocol is
// designed to keep independent of resident-set size.
func (t *Tree) CaptureNs() int64 { return t.captureNs.Load() }
