package repro

// The benchmark suite: one Benchmark per experiment in DESIGN.md's index
// (E1–E10). `go test -bench=. -benchmem` regenerates the measurements
// behind every table in EXPERIMENTS.md; cmd/snapbench prints the
// paper-style tables themselves.

import (
	"context"

	"fmt"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/guest"
	"repro/internal/mem"
	"repro/internal/queens"
	"repro/internal/snapshot"
	"repro/internal/solver"
	"repro/internal/symexec"
	"repro/internal/vm"
)

// --- E1: n-queens three ways -------------------------------------------

func BenchmarkE1QueensHandCoded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if queens.HandCoded(8, nil) != 92 {
			b.Fatal("wrong count")
		}
	}
}

func BenchmarkE1QueensSnapshotHosted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		alloc := mem.NewFrameAllocator(0)
		ctx, err := queens.NewHostedContext(alloc, 8)
		if err != nil {
			b.Fatal(err)
		}
		eng := core.New(core.NewHostedMachine(queens.HostedStep(false)), core.Config{})
		res, err := eng.Run(context.Background(), ctx)
		if err != nil || len(res.Solutions) != 92 {
			b.Fatalf("res=%v err=%v", len(res.Solutions), err)
		}
	}
}

func BenchmarkE1QueensSnapshotNative(b *testing.B) {
	img, err := queens.Asm(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
		if err != nil {
			b.Fatal(err)
		}
		eng := core.New(core.NewVMMachine(0), core.Config{})
		res, err := eng.Run(context.Background(), &snapshot.Context{Mem: as, FS: fs.New(), Regs: regs})
		if err != nil || len(res.Solutions) != 92 {
			b.Fatalf("res=%v err=%v", len(res.Solutions), err)
		}
	}
}

func BenchmarkE1QueensProlog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n, _, err := queens.PrologCount(8, 0)
		if err != nil || n != 92 {
			b.Fatalf("n=%d err=%v", n, err)
		}
	}
}

// --- E2/E3: fault-path microbenchmarks ----------------------------------

// BenchmarkE2CowFault measures one copy-on-write fault: the unit cost the
// granularity argument divides by.
func BenchmarkE2CowFault(b *testing.B) {
	alloc := mem.NewFrameAllocator(0)
	as := mem.NewAddressSpace(alloc)
	if err := as.Map(0, mem.PageSize*uint64(b.N+1), mem.PermRW, "d"); err != nil {
		// Fall back for very large b.N: map lazily per chunk.
		b.Skip("address range too large")
	}
	for i := 0; i < b.N; i++ {
		as.WriteU64(uint64(i)*mem.PageSize, 1)
	}
	snapshotView := as.Fork()
	defer snapshotView.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// First write to a shared page: exactly one CoW copy.
		if err := as.WriteU64(uint64(i)*mem.PageSize+8, 2); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := as.Stats().CowCopies; got < int64(b.N) {
		b.Fatalf("cow copies = %d, want >= %d", got, b.N)
	}
	as.Release()
}

// BenchmarkE3TouchedPages measures a fork + k-page touch + release cycle,
// the locality experiment's inner loop (k=16 of 1024 resident pages).
func BenchmarkE3TouchedPages(b *testing.B) {
	const statePages, touch = 1024, 16
	alloc := mem.NewFrameAllocator(0)
	as := mem.NewAddressSpace(alloc)
	if err := as.Map(0, statePages*mem.PageSize, mem.PermRW, "d"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < statePages; i++ {
		as.WriteU64(uint64(i)*mem.PageSize, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child := as.Fork()
		for j := 0; j < touch; j++ {
			child.WriteU64(uint64(j)*mem.PageSize+8, uint64(i))
		}
		child.Release()
	}
	b.StopTimer()
	as.Release()
}

// --- E4: snapshot vs checkpoint latency ---------------------------------

func benchSpace(b *testing.B, pages int) *mem.AddressSpace {
	b.Helper()
	as := mem.NewAddressSpace(mem.NewFrameAllocator(0))
	if err := as.Map(0x100000, uint64(pages)*mem.PageSize, mem.PermRW, "heap"); err != nil {
		b.Fatal(err)
	}
	as.InitBrk(0x100000)
	for i := 0; i < pages; i++ {
		as.WriteU64(0x100000+uint64(i)*mem.PageSize, uint64(i))
	}
	return as
}

func BenchmarkE4LightweightSnapshot(b *testing.B) {
	as := benchSpace(b, 4096) // 16 MiB resident
	defer as.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := as.Fork()
		r := s.Fork()
		r.Release()
		s.Release()
	}
}

func BenchmarkE4ScanSnapshot(b *testing.B) {
	as := benchSpace(b, 4096)
	defer as.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := checkpoint.ScanSnapshot(as)
		s.Release()
	}
}

func BenchmarkE4FullCheckpoint(b *testing.B) {
	as := benchSpace(b, 4096)
	defer as.Release()
	alloc := as.Alloc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img := checkpoint.Capture(as)
		re, err := checkpoint.Restore(img, alloc)
		if err != nil {
			b.Fatal(err)
		}
		re.Release()
	}
}

func BenchmarkE4EagerFork(b *testing.B) {
	as := benchSpace(b, 4096)
	defer as.Release()
	alloc := as.Alloc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp, err := checkpoint.EagerFork(as, alloc)
		if err != nil {
			b.Fatal(err)
		}
		cp.Release()
	}
}

// --- E5: incremental solving --------------------------------------------

func BenchmarkE5SolveScratch(b *testing.B) {
	base := solver.Random3SAT(120, 420, 42)
	extra := solver.Random3SAT(120, 40, 43)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := solver.New(120)
		for _, cl := range base {
			s.AddClause(cl...)
		}
		for _, cl := range extra {
			s.AddClause(cl...)
		}
		s.Solve(0)
	}
}

func BenchmarkE5SolveIncremental(b *testing.B) {
	base := solver.Random3SAT(120, 420, 42)
	extra := solver.Random3SAT(120, 40, 43)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := solver.New(120)
		for _, cl := range base {
			s.AddClause(cl...)
		}
		s.Solve(0) // the retained state p (not measured)
		b.StartTimer()
		for _, cl := range extra {
			s.AddClause(cl...)
		}
		s.Solve(0) // p ∧ q from p's state: the measured increment
	}
}

// --- E6: symbolic execution ---------------------------------------------

func benchSymTree(b *testing.B, eager bool) {
	b.Helper()
	img, err := guest.AssembleImage(symTreeSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := symexec.NewExplorer(img, symexec.Options{EagerCopy: eager})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := ex.Run()
		if err != nil || len(rep.Paths) != 64 {
			b.Fatalf("paths=%d err=%v", len(rep.Paths), err)
		}
	}
}

const symTreeSrc = `
.data
blob: .space 1048576
.text
_start:
    mov rax, 600
    mov rdi, 0
    syscall
    mov r12, rax
    mov r13, 0
    mov rcx, 0
loop:
    mov rbx, r12
    shr rbx, rcx
    and rbx, 1
    cmp rbx, 0
    je skip
    add r13, 1
skip:
    inc rcx
    cmp rcx, 6
    jl loop
    mov rdi, r13
    mov rax, 60
    syscall
`

func BenchmarkE6SymexecSnapshotFork(b *testing.B) { benchSymTree(b, false) }
func BenchmarkE6SymexecEagerCopy(b *testing.B)    { benchSymTree(b, true) }

// --- E7: strategies (cost of scheduling machinery) -----------------------

func BenchmarkE7StrategyOverhead(b *testing.B) {
	for _, name := range []string{"dfs", "bfs", "astar"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				img, err := guest.AssembleImage(fmt.Sprintf(`
_start:
    mov rax, 502
    mov rdi, %d
    syscall
    mov rax, 500
    mov rdi, 16
    syscall
    mov rax, 501
    syscall
`, map[string]int{"dfs": 0, "bfs": 1, "astar": 2}[name]))
				if err != nil {
					b.Fatal(err)
				}
				as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
				if err != nil {
					b.Fatal(err)
				}
				eng := core.New(core.NewVMMachine(0), core.Config{})
				if _, err := eng.Run(context.Background(), &snapshot.Context{Mem: as, FS: fs.New(), Regs: regs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: snapshot tree throughput ----------------------------------------

func BenchmarkE8CaptureRelease(b *testing.B) {
	alloc := mem.NewFrameAllocator(0)
	ctx, err := core.NewHostedContext(alloc, 256*mem.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	defer ctx.Release()
	for i := 0; i < 256; i++ {
		ctx.Mem.WriteU64(core.HostedHeapBase+uint64(i)*mem.PageSize, uint64(i))
	}
	tree := snapshot.NewTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tree.Capture(ctx, nil)
		s.Release()
	}
}

func BenchmarkE8DeepChain(b *testing.B) {
	alloc := mem.NewFrameAllocator(0)
	ctx, err := core.NewHostedContext(alloc, 64*mem.PageSize)
	if err != nil {
		b.Fatal(err)
	}
	defer ctx.Release()
	tree := snapshot.NewTree()
	var last *snapshot.State
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Mem.WriteU64(core.HostedHeapBase+uint64(i%64)*mem.PageSize, uint64(i))
		s := tree.Capture(ctx, last)
		if last != nil {
			last.Release()
		}
		last = s
	}
	b.StopTimer()
	if last != nil {
		last.Release()
	}
}

// --- E9: parallel workers -------------------------------------------------

func benchQueensWorkers(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		alloc := mem.NewFrameAllocator(0)
		ctx, err := queens.NewHostedContext(alloc, 8)
		if err != nil {
			b.Fatal(err)
		}
		eng := core.New(core.NewHostedMachine(queens.HostedStep(false)),
			core.Config{Workers: workers})
		res, err := eng.Run(context.Background(), ctx)
		if err != nil || len(res.Solutions) != 92 {
			b.Fatalf("solutions=%d err=%v", len(res.Solutions), err)
		}
	}
}

func BenchmarkE9Workers1(b *testing.B) { benchQueensWorkers(b, 1) }
func BenchmarkE9Workers2(b *testing.B) { benchQueensWorkers(b, 2) }
func BenchmarkE9Workers4(b *testing.B) { benchQueensWorkers(b, 4) }

// --- E10: syscall interposition -------------------------------------------

func BenchmarkE10SyscallRoundTrip(b *testing.B) {
	img, err := guest.AssembleImage(`
_start:
loop:
    mov rax, 96
    syscall
    jmp loop
`)
	if err != nil {
		b.Fatal(err)
	}
	as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := &snapshot.Context{Mem: as, FS: fs.New(), Regs: regs}
	defer ctx.Release()
	m := core.NewVMMachine(int64(3 * b.N))
	cpu := vm.New(ctx.Mem)
	cpu.Regs = ctx.Regs
	_ = m
	b.ResetTimer()
	// Count retired syscalls by stepping the interpreter directly.
	n := 0
	for n < b.N {
		t := cpu.Step()
		if t != nil && t.Kind == vm.TrapSyscall {
			cpu.Regs.Set(vm.SysRetReg, cpu.Retired)
			n++
		}
	}
}

// --- E11: software-TLB write locality --------------------------------------

func benchSamePageWrite(b *testing.B, tlbOn bool) {
	b.Helper()
	as := mem.NewAddressSpace(mem.NewFrameAllocator(0))
	defer as.Release()
	as.SetTLBEnabled(tlbOn)
	if err := as.Map(0x10000, 64*mem.PageSize, mem.PermRW, "d"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := as.WriteU64(0x10000+uint64(i&511)*8, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := as.Stats(); tlbOn && st.TLBHits+st.TLBMisses != int64(b.N) {
		b.Fatalf("hits+misses = %d, want %d", st.TLBHits+st.TLBMisses, b.N)
	}
}

// BenchmarkE11SamePageWriteTLB is the repeated-write microbenchmark the
// TLB exists for: every store after the first hits the write cache.
func BenchmarkE11SamePageWriteTLB(b *testing.B)   { benchSamePageWrite(b, true) }
func BenchmarkE11SamePageWriteNoTLB(b *testing.B) { benchSamePageWrite(b, false) }

func benchSamePageRead(b *testing.B, tlbOn bool) {
	b.Helper()
	as := mem.NewAddressSpace(mem.NewFrameAllocator(0))
	defer as.Release()
	as.SetTLBEnabled(tlbOn)
	if err := as.Map(0x10000, 64*mem.PageSize, mem.PermRW, "d"); err != nil {
		b.Fatal(err)
	}
	if err := as.WriteU64(0x10000, 42); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := as.ReadU64(0x10000 + uint64(i&511)*8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11SamePageReadTLB(b *testing.B)   { benchSamePageRead(b, true) }
func BenchmarkE11SamePageReadNoTLB(b *testing.B) { benchSamePageRead(b, false) }

// BenchmarkE11StridedWriteAt exercises the run-length write path: one
// 32-page store resolves its leaf node once per 512-page span instead of
// walking from the root per page.
func BenchmarkE11StridedWriteAt(b *testing.B) {
	as := mem.NewAddressSpace(mem.NewFrameAllocator(0))
	defer as.Release()
	if err := as.Map(0x10000, 64*mem.PageSize, mem.PermRW, "d"); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 32*mem.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := as.WriteAt(buf, 0x10000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMInterpreter measures raw interpreter throughput (instructions
// per second) as context for every native-guest number above.
func BenchmarkVMInterpreter(b *testing.B) {
	img, err := guest.AssembleImage(`
_start:
    mov rcx, 0
loop:
    add rcx, 3
    xor rcx, 5
    shr rcx, 1
    inc rcx
    jmp loop
`)
	if err != nil {
		b.Fatal(err)
	}
	as, regs, err := guest.Load(img, mem.NewFrameAllocator(0), guest.LoadOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer as.Release()
	cpu := vm.New(as)
	cpu.Regs = regs
	b.ResetTimer()
	t := cpu.Run(int64(b.N))
	if t.Kind != vm.TrapInstrLimit {
		b.Fatalf("trap = %v", t)
	}
}
