module repro

go 1.24

require golang.org/x/tools v0.24.0 // reprolint_xtools-gated standard analyzers
